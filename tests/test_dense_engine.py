"""Equivalence suite: the dense engine against the reference engine.

The contract under test: for each algorithm's twin programs, running the
:class:`~repro.bsp.dense.DenseVertexProgram` on the
:class:`~repro.bsp.dense.DenseBSPEngine` produces the *same*
:class:`~repro.bsp.engine.BSPResult` as running the per-vertex
:class:`~repro.bsp.vertex.VertexProgram` on the reference engine —
identical values, superstep counts, per-superstep active/message counts,
and work-trace regions.  Plus the dense engine's own mechanics:
checkpoint/resume, aggregators, initial activation, and validation.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import (
    BSPEngine,
    CheckpointStore,
    DenseBSPEngine,
    DenseVertexProgram,
    SumAggregator,
    load_checkpoint,
    save_checkpoint,
)
from repro.bsp_algorithms import (
    BSPBreadthFirstSearch,
    BSPConnectedComponents,
    BSPKCore,
    BSPPageRank,
    BSPShortestPaths,
    DenseBreadthFirstSearch,
    DenseConnectedComponents,
    DenseKCore,
    DensePageRank,
    DenseShortestPaths,
)
from repro.bsp_algorithms.bfs import UNREACHED
from repro.graph import from_edge_list, path_graph, ring_graph, rmat, star_graph

# -- graph cases -----------------------------------------------------------

GRAPHS = {
    "path": lambda: path_graph(9),
    "ring": lambda: ring_graph(12),
    "star": lambda: star_graph(8),
    "isolated": lambda: from_edge_list([(0, 1), (2, 3)], num_vertices=7),
    "self_loops": lambda: from_edge_list(
        [(0, 0), (0, 1), (1, 2), (2, 2), (3, 3)],
        num_vertices=5,
        remove_self_loops=False,
    ),
    "rmat6": lambda: rmat(scale=6, edge_factor=8, seed=3),
    "rmat8": lambda: rmat(scale=8, edge_factor=8, seed=7),
}


@pytest.fixture(params=sorted(GRAPHS), scope="module")
def graph(request):
    return GRAPHS[request.param]()


def assert_traces_equal(ref, dense):
    """Region-by-region work-trace identity."""
    assert len(ref.trace) == len(dense.trace)
    for a, b in zip(ref.trace, dense.trace):
        for f in dataclasses.fields(a):
            assert getattr(a, f.name) == pytest.approx(
                getattr(b, f.name)
            ), f.name


def assert_results_equal(ref, dense, *, float_values=False):
    """Superstep-level identity of two BSPResults (reference vs dense)."""
    assert ref.num_supersteps == dense.num_supersteps
    assert ref.active_per_superstep == dense.active_per_superstep
    assert ref.messages_per_superstep == dense.messages_per_superstep
    if float_values:
        np.testing.assert_allclose(
            np.asarray(ref.values, dtype=np.float64),
            np.asarray(dense.values, dtype=np.float64),
            rtol=0, atol=1e-12,
        )
    else:
        assert np.array_equal(np.asarray(ref.values), dense.values)
    assert_traces_equal(ref, dense)


# -- per-algorithm equivalence ---------------------------------------------


class TestAlgorithmEquivalence:
    def test_connected_components(self, graph):
        ref = BSPEngine(graph).run(BSPConnectedComponents())
        dense = DenseBSPEngine(graph).run(DenseConnectedComponents())
        assert_results_equal(ref, dense)

    def test_bfs(self, graph):
        for source in (0, graph.num_vertices - 1):
            ref = BSPEngine(graph).run(BSPBreadthFirstSearch(source))
            ref.values = [
                UNREACHED if v is None else v for v in ref.values
            ]
            dense = DenseBSPEngine(graph).run(
                DenseBreadthFirstSearch(source)
            )
            assert_results_equal(ref, dense)

    def test_sssp(self, graph):
        source = 0
        ref = BSPEngine(graph).run(BSPShortestPaths(source))
        dense = DenseBSPEngine(graph).run(DenseShortestPaths(source))
        assert_results_equal(ref, dense)

    def test_sssp_weighted(self):
        rng = np.random.default_rng(11)
        edges = [(i % 20, (i * 7 + 3) % 20) for i in range(40)]
        weights = rng.uniform(0.1, 5.0, size=len(edges))
        g = from_edge_list(edges, num_vertices=20, weights=weights)
        ref = BSPEngine(g).run(BSPShortestPaths(0))
        dense = DenseBSPEngine(g).run(DenseShortestPaths(0))
        assert_results_equal(ref, dense)

    def test_pagerank(self, graph):
        # Both engines get the dangling aggregator: the reference program
        # drops dangling mass without one, while the dense program (like
        # the vectorized kernel it replaced) always redistributes it.
        aggs = {"dangling": SumAggregator()}
        ref = BSPEngine(graph, aggregators=aggs).run(
            BSPPageRank(num_supersteps=8)
        )
        dense = DenseBSPEngine(graph, aggregators=aggs).run(
            DensePageRank(num_supersteps=8)
        )
        assert_results_equal(ref, dense, float_values=True)

    def test_kcore(self, graph):
        for k in (1, 2, 3):
            ref = BSPEngine(graph).run(BSPKCore(k))
            dense = DenseBSPEngine(graph).run(DenseKCore(k))
            assert_results_equal(ref, dense)

    @pytest.mark.parametrize(
        "dense_program",
        [DenseConnectedComponents(), DensePageRank(num_supersteps=3)],
        ids=["cc", "pagerank"],
    )
    def test_empty_graph(self, dense_program):
        g = from_edge_list([], num_vertices=0)
        dense = DenseBSPEngine(g).run(dense_program)
        assert dense.num_supersteps == 0
        assert dense.values.size == 0
        assert dense.active_per_superstep == []

    def test_combine_messages_matches_reference_combiner_values(self, graph):
        """The ablation accounting changes counts, never labels."""
        plain = DenseBSPEngine(graph).run(DenseConnectedComponents())
        combined = DenseBSPEngine(graph, combine_messages=True).run(
            DenseConnectedComponents()
        )
        assert np.array_equal(plain.values, combined.values)
        assert plain.num_supersteps == combined.num_supersteps
        assert combined.total_messages <= plain.total_messages


class TestPropertyEquivalence:
    @st.composite
    @staticmethod
    def random_graph(draw):
        n = draw(st.integers(min_value=1, max_value=16))
        m = draw(st.integers(min_value=0, max_value=40))
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=m, max_size=m,
            )
        )
        loops = draw(st.booleans())
        return from_edge_list(edges, n, remove_self_loops=not loops)

    @given(random_graph())
    @settings(max_examples=60, deadline=None)
    def test_connected_components_equivalence(self, g):
        ref = BSPEngine(g).run(BSPConnectedComponents())
        dense = DenseBSPEngine(g).run(DenseConnectedComponents())
        assert_results_equal(ref, dense)

    @given(random_graph())
    @settings(max_examples=40, deadline=None)
    def test_bfs_equivalence(self, g):
        ref = BSPEngine(g).run(BSPBreadthFirstSearch(0))
        ref.values = [UNREACHED if v is None else v for v in ref.values]
        dense = DenseBSPEngine(g).run(DenseBreadthFirstSearch(0))
        assert_results_equal(ref, dense)


# -- dense-engine mechanics ------------------------------------------------


class TestDenseEngineMechanics:
    def test_initial_active_restricts_superstep0(self):
        g = ring_graph(8)
        ref = BSPEngine(g).run(
            BSPConnectedComponents(), initial_active=[3]
        )
        dense = DenseBSPEngine(g).run(
            DenseConnectedComponents(), initial_active=[3]
        )
        assert_results_equal(ref, dense)
        assert dense.active_per_superstep[0] == 1

    def test_initial_active_out_of_range(self):
        with pytest.raises(IndexError):
            DenseBSPEngine(ring_graph(3)).run(
                DenseConnectedComponents(), initial_active=[9]
            )
        with pytest.raises(IndexError):
            DenseBSPEngine(ring_graph(3)).run(
                DenseConnectedComponents(), initial_active=[-1]
            )

    def test_max_supersteps_cap(self):
        g = ring_graph(6)
        ref = BSPEngine(g).run(BSPPageRank(30), max_supersteps=3)
        dense = DenseBSPEngine(g).run(DensePageRank(30), max_supersteps=3)
        assert dense.num_supersteps == 3
        assert_results_equal(ref, dense, float_values=True)

    def test_max_supersteps_validated(self):
        with pytest.raises(ValueError):
            DenseBSPEngine(ring_graph(3)).run(
                DenseConnectedComponents(), max_supersteps=0
            )

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            DenseBSPEngine(ring_graph(3)).run(
                DenseConnectedComponents(),
                checkpoint_every=0,
                checkpoint_store=CheckpointStore(),
            )
        with pytest.raises(ValueError, match="checkpoint_store"):
            DenseBSPEngine(ring_graph(3)).run(
                DenseConnectedComponents(), checkpoint_every=1
            )

    def test_missing_combine_identity_rejected(self):
        class NoIdentity(DenseVertexProgram):
            def initial_values(self, graph):
                return np.zeros(graph.num_vertices)

            def arc_payload(self, graph, values, arc_mask):
                return values[graph.arc_sources()[arc_mask]]

            def compute(self, ctx):
                ctx.vote_to_halt()
                return None

        with pytest.raises(ValueError, match="combine_identity"):
            DenseBSPEngine(ring_graph(3)).run(NoIdentity())

    def test_result_values_do_not_alias_engine_state(self):
        g = ring_graph(5)
        engine = DenseBSPEngine(g)
        res = engine.run(DenseConnectedComponents())
        engine.values[0] = 999
        assert res.values[0] == 0

    def test_dangling_aggregator_matches_reference(self):
        """PageRank through the ``dangling`` sum aggregator: both engines
        see the same aggregated mass one superstep later."""
        g = from_edge_list([(0, 1), (1, 2)], num_vertices=5)  # 3, 4 dangle
        aggs = {"dangling": SumAggregator()}
        ref = BSPEngine(g, aggregators=aggs).run(BSPPageRank(6))
        dense = DenseBSPEngine(g, aggregators=aggs).run(DensePageRank(6))
        assert ref.num_supersteps == dense.num_supersteps
        np.testing.assert_allclose(
            np.asarray(ref.values), dense.values, rtol=0, atol=1e-12
        )
        np.testing.assert_allclose(
            ref.aggregator_history["dangling"],
            dense.aggregator_history["dangling"],
            rtol=0, atol=1e-12,
        )
        # Dangling redistribution is also exercised without the
        # aggregator — identical ranks via the internal fallback.
        plain = DenseBSPEngine(g).run(DensePageRank(6))
        np.testing.assert_allclose(
            plain.values, dense.values, rtol=0, atol=1e-12
        )

    def test_unknown_aggregator_raises(self):
        class BadAgg(DenseConnectedComponents):
            def compute(self, ctx):
                ctx.aggregate("nope", 1)
                return super().compute(ctx)

        with pytest.raises(KeyError, match="nope"):
            DenseBSPEngine(ring_graph(3)).run(BadAgg())


# -- checkpoint / resume ---------------------------------------------------


class DenseCrashError(RuntimeError):
    pass


class CrashingDenseCC(DenseConnectedComponents):
    """Dense connected components that dies when first reaching a
    superstep."""

    def __init__(self, crash_at: int):
        self.crash_at = crash_at
        self.armed = True

    def compute(self, ctx):
        if self.armed and ctx.superstep == self.crash_at:
            raise DenseCrashError(
                f"injected failure at superstep {ctx.superstep}"
            )
        return super().compute(ctx)


@pytest.fixture(scope="module")
def crash_graph():
    return rmat(scale=7, edge_factor=8, seed=5)


class TestDenseFailureRecovery:
    @pytest.mark.parametrize("crash_at,every", [(2, 1), (3, 2), (4, 3)])
    def test_recovered_run_matches_clean_run(
        self, crash_graph, crash_at, every
    ):
        clean = DenseBSPEngine(crash_graph).run(DenseConnectedComponents())
        store = CheckpointStore()
        program = CrashingDenseCC(crash_at)
        engine = DenseBSPEngine(crash_graph)
        with pytest.raises(DenseCrashError):
            engine.run(
                program, checkpoint_every=every, checkpoint_store=store
            )
        assert store.latest is not None
        program.armed = False
        recovered = engine.run(program, resume_from=store.latest)
        assert np.array_equal(recovered.values, clean.values)
        assert recovered.num_supersteps == clean.num_supersteps
        assert (
            recovered.messages_per_superstep == clean.messages_per_superstep
        )
        assert recovered.active_per_superstep == clean.active_per_superstep

    def test_trace_covers_only_replayed_supersteps(self, crash_graph):
        clean = DenseBSPEngine(crash_graph).run(DenseConnectedComponents())
        store = CheckpointStore()
        program = CrashingDenseCC(3)
        engine = DenseBSPEngine(crash_graph)
        with pytest.raises(DenseCrashError):
            engine.run(program, checkpoint_every=2, checkpoint_store=store)
        program.armed = False
        recovered = engine.run(program, resume_from=store.latest)
        assert (
            len(recovered.trace)
            == clean.num_supersteps - store.latest.superstep
        )

    def test_dense_checkpoint_stores_senders_not_pairs(self, crash_graph):
        store = CheckpointStore(retain=100)
        DenseBSPEngine(crash_graph).run(
            DenseConnectedComponents(),
            checkpoint_every=1,
            checkpoint_store=store,
        )
        for ck in store._checkpoints:
            assert ck.pending == []
            assert ck.dense_senders is not None

    def test_dense_checkpoint_disk_round_trip(self, tmp_path, crash_graph):
        clean = DenseBSPEngine(crash_graph).run(DenseConnectedComponents())
        store = CheckpointStore()
        DenseBSPEngine(crash_graph).run(
            DenseConnectedComponents(),
            max_supersteps=3,
            checkpoint_every=2,
            checkpoint_store=store,
        )
        path = tmp_path / "dense.pkl"
        save_checkpoint(store.latest, path)
        loaded = load_checkpoint(path)
        assert np.array_equal(loaded.dense_senders, store.latest.dense_senders)
        resumed = DenseBSPEngine(crash_graph).run(
            DenseConnectedComponents(), resume_from=loaded
        )
        assert np.array_equal(resumed.values, clean.values)

    def test_cross_engine_checkpoints_rejected(self, crash_graph):
        dense_store = CheckpointStore()
        DenseBSPEngine(crash_graph).run(
            DenseConnectedComponents(),
            max_supersteps=3,
            checkpoint_every=2,
            checkpoint_store=dense_store,
        )
        with pytest.raises(ValueError, match="DenseBSPEngine"):
            BSPEngine(crash_graph).run(
                BSPConnectedComponents(), resume_from=dense_store.latest
            )
        ref_store = CheckpointStore()
        BSPEngine(crash_graph).run(
            BSPConnectedComponents(),
            max_supersteps=3,
            checkpoint_every=2,
            checkpoint_store=ref_store,
        )
        with pytest.raises(ValueError, match="reference"):
            DenseBSPEngine(crash_graph).run(
                DenseConnectedComponents(), resume_from=ref_store.latest
            )

    def test_resume_graph_mismatch_rejected(self, crash_graph):
        store = CheckpointStore()
        DenseBSPEngine(crash_graph).run(
            DenseConnectedComponents(),
            max_supersteps=3,
            checkpoint_every=2,
            checkpoint_store=store,
        )
        with pytest.raises(ValueError, match="vertex count"):
            DenseBSPEngine(ring_graph(5)).run(
                DenseConnectedComponents(), resume_from=store.latest
            )
