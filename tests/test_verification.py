"""Tests for the executable claim scorecard."""

import pytest

from repro.analysis.verification import (
    Criterion,
    CriterionResult,
    VerificationReport,
    verify_all,
)
from repro.analysis.workload import ExperimentConfig


@pytest.fixture(scope="module")
def report():
    return verify_all(ExperimentConfig(scale=12, edge_factor=16, seed=1))


class TestVerifyAll:
    def test_every_criterion_passes_at_experiment_scale(self, report):
        failures = [r for r in report.results if not r.passed]
        assert not failures, "\n".join(
            f"{r.experiment}: {r.claim} -> {r.detail}" for r in failures
        )

    def test_covers_every_experiment(self, report):
        experiments = {r.experiment for r in report.results}
        assert experiments == {
            "Table I", "Figure 1", "Figure 2", "Figure 3", "Figure 4",
            "Anecdotes",
        }

    def test_counts(self, report):
        assert report.num_passed == len(report.results)
        assert report.all_passed
        assert len(report.results) >= 15

    def test_details_are_informative(self, report):
        for r in report.results:
            assert len(r.detail) > 10

    def test_render(self, report):
        text = report.render()
        assert "Verification scorecard" in text
        assert text.count("PASS") == report.num_passed
        assert "criteria passed" in text


class TestFailureHandling:
    def test_raising_check_becomes_failure(self):
        report = VerificationReport(config=ExperimentConfig())
        crit = Criterion("X", "boom", lambda ctx: 1 / 0)
        try:
            passed, detail = crit.check({})
        except Exception as exc:
            passed, detail = False, f"check raised {exc!r}"
        report.results.append(
            CriterionResult("X", "boom", passed, detail)
        )
        assert not report.all_passed
        assert "FAIL" in report.render()


def test_cli_verify_subcommand(capsys):
    from repro.cli import main

    assert main(["verify", "--scale", "10"]) == 0
    out = capsys.readouterr().out
    assert "Verification scorecard" in out
    assert "criteria passed" in out
