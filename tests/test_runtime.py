"""Tests for the instrumented runtime layer (counters, tracer, reducers)."""

import numpy as np
import pytest

from repro.runtime import (
    OpCounter,
    Tracer,
    parallel_argmax,
    parallel_max,
    parallel_min,
    parallel_sum,
)
from repro.runtime.loops import RegionRecorder


class TestOpCounter:
    def test_add_and_totals(self):
        c = OpCounter()
        c.add(instructions=5, reads=3, writes=2, atomics=1)
        assert c.memory_ops == 6
        assert c.total == 11

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().add(reads=-1)

    def test_merge(self):
        a = OpCounter(instructions=1)
        b = OpCounter(reads=2)
        a.merge(b)
        assert a.instructions == 1 and a.reads == 2

    def test_reset(self):
        c = OpCounter(instructions=4)
        c.reset()
        assert c.total == 0

    def test_snapshot_delta(self):
        c = OpCounter()
        c.add(reads=2)
        snap = c.snapshot()
        c.add(reads=3, writes=1)
        d = c.delta_since(snap)
        assert d.reads == 3 and d.writes == 1


class TestTracer:
    def test_region_recorded(self):
        tr = Tracer(label="t")
        with tr.region("work", items=5, iteration=2) as r:
            r.count(reads=10, instructions=20)
        assert len(tr.trace) == 1
        reg = tr.trace.regions[0]
        assert reg.name == "work"
        assert reg.parallel_items == 5
        assert reg.iteration == 2
        assert reg.reads == 10

    def test_nested_region_rejected(self):
        tr = Tracer()
        with pytest.raises(RuntimeError, match="nest"):
            with tr.region("outer", items=1):
                with tr.region("inner", items=1):
                    pass
        # The aborted outer region is not recorded.
        assert len(tr.trace) == 0
        # The tracer is reusable after the failure.
        with tr.region("after", items=1):
            pass
        assert [r.name for r in tr.trace] == ["after"]

    def test_sequential_regions_allowed(self):
        tr = Tracer()
        with tr.region("a", items=1):
            pass
        with tr.region("b", items=1):
            pass
        assert len(tr.trace) == 2

    def test_atomics_per_site_array(self):
        tr = Tracer()
        with tr.region("q", items=3) as r:
            r.atomics_per_site(np.array([5, 1, 2]))
        reg = tr.trace.regions[0]
        assert reg.atomics == 8
        assert reg.atomic_max_site == 5

    def test_atomics_per_site_scalar_means_one_location(self):
        tr = Tracer()
        with tr.region("q", items=3) as r:
            r.atomics_per_site(100)
        reg = tr.trace.regions[0]
        assert reg.atomics == 100
        assert reg.atomic_max_site == 100

    def test_atomics_per_site_empty_noop(self):
        tr = Tracer()
        with tr.region("q", items=1) as r:
            r.atomics_per_site(np.array([]))
        assert tr.trace.regions[0].atomics == 0

    def test_atomics_per_site_negative_rejected(self):
        with pytest.raises(ValueError):
            RegionRecorder("x", 1).atomics_per_site(np.array([-1]))

    def test_count_ops_folds_counter(self):
        tr = Tracer()
        ops = OpCounter(reads=4, atomics=2)
        with tr.region("r", items=2) as r:
            r.count_ops(ops)
        reg = tr.trace.regions[0]
        assert reg.reads == 4
        assert reg.atomics == 2

    def test_serial_section(self):
        tr = Tracer()
        tr.serial("setup", OpCounter(writes=10), iteration=0)
        reg = tr.trace.regions[0]
        assert reg.kind == "serial"
        assert reg.parallel_items == 1
        assert reg.writes == 10

    def test_superstep_kind_propagates(self):
        tr = Tracer()
        with tr.region("ss", items=4, kind="superstep"):
            pass
        assert tr.trace.regions[0].kind == "superstep"


class TestReducers:
    def test_values(self):
        v = np.array([3, 1, 4, 1, 5])
        assert parallel_sum(v) == 14
        assert parallel_min(v) == 1
        assert parallel_max(v) == 5
        assert parallel_argmax(v) == 4

    def test_empty_rejected(self):
        empty = np.array([])
        for fn in (parallel_min, parallel_max, parallel_argmax):
            with pytest.raises(ValueError):
                fn(empty)

    def test_empty_sum_is_zero(self):
        assert parallel_sum(np.array([])) == 0

    def test_reduction_accounted(self):
        rec = RegionRecorder("red", items=8)
        parallel_sum(np.arange(8), rec)
        region = rec.finish()
        assert region.reads == 8
        assert region.writes == 1
        assert region.instructions >= 8

    def test_empty_reduction_not_accounted(self):
        rec = RegionRecorder("red", items=0)
        parallel_sum(np.array([]), rec)
        assert rec.finish().reads == 0
