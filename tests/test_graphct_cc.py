"""Tests for GraphCT shared-memory connected components."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edge_list, ring_graph, star_graph, two_d_grid
from repro.graphct import connected_components


class TestCorrectness:
    def test_two_components(self):
        g = from_edge_list([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        res = connected_components(g)
        assert res.num_components == 3
        assert res.labels[0] == res.labels[1] == res.labels[2]
        assert res.labels[3] == res.labels[4]
        assert res.labels[5] == 5

    def test_label_is_component_minimum(self):
        g = from_edge_list([(5, 3), (3, 9)], num_vertices=10)
        res = connected_components(g)
        assert res.labels[5] == res.labels[3] == res.labels[9] == 3

    def test_matches_networkx(self, small_rmat, small_rmat_nx):
        res = connected_components(small_rmat)
        assert res.num_components == nx.number_connected_components(
            small_rmat_nx
        )
        # Same partition: labels must be constant on each nx component.
        for comp in nx.connected_components(small_rmat_nx):
            comp = list(comp)
            assert len({int(res.labels[v]) for v in comp}) == 1

    def test_ring(self):
        res = connected_components(ring_graph(50))
        assert res.num_components == 1
        assert np.all(res.labels == 0)

    def test_all_isolated(self):
        g = from_edge_list([], num_vertices=5)
        res = connected_components(g)
        assert res.num_components == 5
        assert res.num_iterations == 1  # single no-change sweep

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            connected_components(g)

    def test_max_iterations_cap(self):
        res = connected_components(ring_graph(64), max_iterations=1)
        assert res.num_iterations == 1


class TestExecutionProfile:
    """The properties Fig. 1 (right panel) relies on."""

    def test_constant_work_per_iteration(self, small_rmat):
        """All edges are examined in all iterations (paper §III)."""
        res = connected_components(small_rmat)
        reads = [r.reads for r in res.trace if r.name == "cc/iteration"]
        assert len(reads) == res.num_iterations
        for r in res.trace:
            assert r.reads >= 2 * small_rmat.num_arcs

    def test_parallelism_is_edge_count(self, small_rmat):
        res = connected_components(small_rmat)
        for r in res.trace:
            assert r.parallel_items == small_rmat.num_arcs

    def test_few_iterations_on_small_world(self, small_rmat):
        """Label propagation fixes most labels early (paper: 6 iterations
        at scale 24; miniatures converge in <= 6)."""
        res = connected_components(small_rmat)
        assert 2 <= res.num_iterations <= 6
        # Almost everything changes in the first iteration, little after.
        assert res.changes_per_iteration[0] > 10 * max(
            res.changes_per_iteration[1], 1
        )

    def test_last_iteration_has_no_changes(self, small_rmat):
        res = connected_components(small_rmat)
        assert res.changes_per_iteration[-1] == 0

    def test_writes_match_changes(self, small_rmat):
        res = connected_components(small_rmat)
        writes = [r.writes for r in res.trace]
        assert writes == [float(c) for c in res.changes_per_iteration]

    def test_grid_takes_more_iterations_than_rmat(self, small_rmat):
        """Large-diameter topologies need more sweeps."""
        grid = two_d_grid(40, 40)
        res_grid = connected_components(grid)
        res_rmat = connected_components(small_rmat)
        assert res_grid.num_iterations >= res_rmat.num_iterations

    def test_star_converges_in_two(self):
        res = connected_components(star_graph(100))
        assert res.num_iterations == 2  # one working sweep + fixpoint check
