"""Property-based tests (hypothesis): machine model and BSP framework
invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp.combiners import MaxCombiner, MinCombiner, SumCombiner
from repro.bsp.messages import MessageBuffer
from repro.xmt import RegionTrace, WorkTrace, XMTMachine
from repro.xmt.cost_model import simulate, simulate_region


@st.composite
def regions(draw):
    items = draw(st.integers(min_value=0, max_value=10**7))
    instructions = draw(st.floats(min_value=0, max_value=1e9))
    reads = draw(st.floats(min_value=0, max_value=1e8))
    writes = draw(st.floats(min_value=0, max_value=1e8))
    atomics = draw(st.floats(min_value=0, max_value=1e6))
    max_site = draw(st.floats(min_value=0, max_value=1.0)) * atomics
    kind = draw(st.sampled_from(["loop", "superstep", "serial"]))
    return RegionTrace(
        name="r",
        parallel_items=items,
        instructions=instructions,
        reads=reads,
        writes=writes,
        atomics=atomics,
        atomic_max_site=max_site,
        kind=kind,
    )


class TestCostModelProperties:
    @given(regions())
    def test_time_is_positive_and_finite(self, region):
        sim = simulate_region(region, XMTMachine())
        assert np.isfinite(sim.seconds)
        assert sim.seconds >= 0

    @given(regions(), st.integers(min_value=1, max_value=6))
    def test_more_processors_never_slower_modulo_barrier(self, region, k):
        """Doubling P can only add barrier cost, never compute time."""
        small = XMTMachine(num_processors=2**k)
        big = XMTMachine(num_processors=2 ** (k + 1))
        t_small = simulate_region(region, small)
        t_big = simulate_region(region, big)
        compute_small = t_small.total_cycles - t_small.overhead_cycles
        compute_big = t_big.total_cycles - t_big.overhead_cycles
        assert compute_big <= compute_small + 1e-6

    @given(regions())
    def test_speedup_bounded_by_processor_ratio(self, region):
        t8 = simulate_region(region, XMTMachine(num_processors=8))
        t128 = simulate_region(region, XMTMachine(num_processors=128))
        assert t8.seconds / max(t128.seconds, 1e-30) <= 16.0 + 1e-9

    @given(regions(), st.floats(min_value=0.1, max_value=100.0))
    def test_scaling_work_scales_bounds(self, region, factor):
        base = simulate_region(region, XMTMachine())
        scaled = simulate_region(region.scaled(factor), XMTMachine())
        # Scaling work cannot reduce any bound (items also scale, so
        # latency can improve sublinearly, but never below the original
        # when factor >= 1).
        if factor >= 1:
            assert scaled.issue_cycles >= base.issue_cycles - 1e-6
            assert scaled.hotspot_cycles >= base.hotspot_cycles - 1e-6

    @given(regions())
    def test_hotspot_independent_of_processors(self, region):
        a = simulate_region(region, XMTMachine(num_processors=8))
        b = simulate_region(region, XMTMachine(num_processors=128))
        assert a.hotspot_cycles == b.hotspot_cycles

    @given(st.lists(regions(), min_size=1, max_size=8))
    def test_run_total_is_sum_of_regions(self, region_list):
        trace = WorkTrace(regions=region_list)
        run = simulate(trace, XMTMachine())
        assert run.total_seconds == sum(r.seconds for r in run.regions)

    @given(regions())
    def test_bound_label_consistent(self, region):
        sim = simulate_region(region, XMTMachine())
        best = max(sim.issue_cycles, sim.latency_cycles, sim.hotspot_cycles)
        if sim.bound == "overhead":
            assert best <= 0
        else:
            assert getattr(sim, f"{sim.bound}_cycles") == best


class TestTraceScalingProperties:
    @given(regions(), st.floats(min_value=0.01, max_value=1000.0))
    def test_scaled_counts_proportional(self, region, factor):
        s = region.scaled(factor)
        assert s.instructions == region.instructions * factor
        assert s.reads == region.reads * factor
        assert s.atomics == region.atomics * factor

    @given(regions())
    def test_scaling_identity(self, region):
        s = region.scaled(1.0)
        assert s.instructions == region.instructions
        assert s.parallel_items in (
            region.parallel_items,
            max(region.parallel_items, 1),
        )


class TestCombinerAlgebra:
    @given(
        st.sampled_from([MinCombiner(), MaxCombiner(), SumCombiner()]),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    def test_associative(self, combiner, a, b, c):
        left = combiner.combine(combiner.combine(a, b), c)
        right = combiner.combine(a, combiner.combine(b, c))
        assert left == right

    @given(
        st.sampled_from([MinCombiner(), MaxCombiner(), SumCombiner()]),
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    def test_commutative(self, combiner, a, b):
        assert combiner.combine(a, b) == combiner.combine(b, a)


@st.composite
def send_batches(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    sends = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=-100, max_value=100),
            ),
            max_size=60,
        )
    )
    return n, sends


class TestMessageBufferProperties:
    @given(send_batches())
    def test_conservation_without_combiner(self, batch):
        n, sends = batch
        buf = MessageBuffer(n)
        for target, payload in sends:
            buf.send(0, target, payload)
        delivered = sum(len(buf.messages_for(v)) for v in range(n))
        assert delivered == len(sends)
        assert buf.total_sent == len(sends)
        assert int(buf.enqueues_per_destination.sum()) == len(sends)

    @given(send_batches())
    def test_min_combiner_keeps_minimum_per_destination(self, batch):
        n, sends = batch
        buf = MessageBuffer(n, MinCombiner())
        expected: dict[int, int] = {}
        for target, payload in sends:
            buf.send(0, target, payload)
            expected[target] = min(expected.get(target, payload), payload)
        for v in range(n):
            msgs = buf.messages_for(v)
            if v in expected:
                assert msgs == [expected[v]]
            else:
                assert msgs == []

    @given(send_batches())
    def test_queue_pressure_is_max_histogram(self, batch):
        n, sends = batch
        buf = MessageBuffer(n)
        for target, payload in sends:
            buf.send(0, target, payload)
        hist = np.zeros(n, dtype=int)
        for target, _ in sends:
            hist[target] += 1
        assert buf.max_queue_pressure() == hist.max(initial=0)
