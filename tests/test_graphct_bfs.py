"""Tests for GraphCT level-synchronous BFS."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edge_list, path_graph, ring_graph, star_graph
from repro.graph.properties import peripheral_vertex
from repro.graphct import breadth_first_search


class TestCorrectness:
    def test_path_distances(self):
        res = breadth_first_search(path_graph(5), 0)
        assert res.distances.tolist() == [0, 1, 2, 3, 4]
        assert res.parents.tolist() == [-1, 0, 1, 2, 3]

    def test_matches_networkx(self, small_rmat, small_rmat_nx):
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        oracle = nx.single_source_shortest_path_length(small_rmat_nx, src)
        mine = {v: int(d) for v, d in enumerate(res.distances) if d >= 0}
        assert mine == oracle

    def test_unreachable_marked(self):
        g = from_edge_list([(0, 1), (2, 3)])
        res = breadth_first_search(g, 0)
        assert res.distances[2] == -1 and res.distances[3] == -1
        assert res.parents[2] == -1

    def test_parents_form_valid_tree(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        for v in np.flatnonzero(res.distances > 0):
            p = res.parents[v]
            assert res.distances[p] == res.distances[v] - 1
            assert small_rmat.has_edge(int(p), int(v))

    def test_source_out_of_range(self):
        with pytest.raises(IndexError):
            breadth_first_search(ring_graph(4), 4)

    def test_directed_graph_follows_arcs(self):
        g = from_edge_list([(0, 1), (1, 2)], directed=True)
        res = breadth_first_search(g, 0)
        assert res.distances.tolist() == [0, 1, 2]
        back = breadth_first_search(g, 2)
        assert back.distances.tolist() == [-1, -1, 0]

    def test_isolated_source(self):
        g = from_edge_list([(0, 1)], num_vertices=3)
        res = breadth_first_search(g, 2)
        assert res.vertices_reached == 1
        assert res.frontier_sizes == [1]


class TestExecutionProfile:
    """The per-level properties of Figures 2 and 3."""

    def test_frontier_sizes_partition_reached_vertices(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        assert sum(res.frontier_sizes) == res.vertices_reached

    def test_frontier_matches_distance_histogram(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        for level, size in enumerate(res.frontier_sizes):
            assert size == int(np.count_nonzero(res.distances == level))

    def test_edges_examined_is_frontier_degree_sum(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        deg = small_rmat.degrees()
        for level, arcs in enumerate(res.edges_examined):
            frontier = np.flatnonzero(res.distances == level)
            assert arcs == int(deg[frontier].sum())

    def test_frontier_ramps_and_contracts(self, small_rmat):
        """Paper Fig. 2: frontier grows, peaks, then contracts."""
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        apex = int(np.argmax(res.frontier_sizes))
        assert 0 < apex < res.num_levels - 1
        assert res.frontier_sizes[apex] > 100 * res.frontier_sizes[0]

    def test_one_region_per_level(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        assert len(res.trace) == res.num_levels
        assert [r.iteration for r in res.trace] == list(range(res.num_levels))

    def test_region_parallelism_is_frontier_size(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        assert [r.parallel_items for r in res.trace] == res.frontier_sizes

    def test_queue_atomics_chunked(self, small_rmat):
        """Tail reservation is chunked: far fewer atomics than vertices."""
        src = peripheral_vertex(small_rmat)
        res = breadth_first_search(small_rmat, src)
        total_atomics = sum(r.atomics for r in res.trace)
        assert total_atomics < res.vertices_reached / 8

    def test_star_two_levels(self):
        res = breadth_first_search(star_graph(50), 1)
        assert res.frontier_sizes == [1, 1, 49]
