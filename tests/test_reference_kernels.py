"""Tests for the XMT-primitive reference kernels (independent oracle for
the vectorized kernels, and end-to-end exercise of full/empty +
fetch-and-add)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_list, path_graph, ring_graph, rmat
from repro.graphct import breadth_first_search, connected_components
from repro.graphct.reference import (
    reference_bfs,
    reference_connected_components,
)


class TestReferenceBFS:
    def test_path(self):
        dist, ops = reference_bfs(path_graph(5), 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]
        assert ops.atomics >= 5  # one queue reservation per vertex

    def test_matches_vectorized(self):
        g = rmat(scale=8, edge_factor=8, seed=3)
        src = int(np.argmax(g.degrees()))
        ref, _ = reference_bfs(g, src)
        vec = breadth_first_search(g, src).distances
        assert np.array_equal(ref, vec)

    def test_unreachable(self):
        g = from_edge_list([(0, 1), (2, 3)])
        dist, _ = reference_bfs(g, 0)
        assert dist.tolist() == [0, 1, -1, -1]

    def test_source_validated(self):
        with pytest.raises(IndexError):
            reference_bfs(ring_graph(3), 5)

    def test_op_counter_accounts_queue_traffic(self):
        g = ring_graph(10)
        _, ops = reference_bfs(g, 0)
        assert ops.atomics == 10   # every vertex enqueued once
        assert ops.reads > 0 and ops.writes > 0

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_matches_vectorized(self, data):
        n = data.draw(st.integers(min_value=1, max_value=14))
        m = data.draw(st.integers(min_value=0, max_value=30))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=m, max_size=m,
            )
        )
        g = from_edge_list(edges, n)
        src = data.draw(st.integers(min_value=0, max_value=n - 1))
        ref, _ = reference_bfs(g, src)
        vec = breadth_first_search(g, src).distances
        assert np.array_equal(ref, vec)


class TestReferenceCC:
    def test_two_components(self):
        g = from_edge_list([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        labels, _ = reference_connected_components(g)
        assert labels.tolist() == [0, 0, 0, 3, 3, 5]

    def test_matches_vectorized(self):
        g = rmat(scale=8, edge_factor=8, seed=6)
        ref, _ = reference_connected_components(g)
        vec = connected_components(g).labels
        assert np.array_equal(ref, vec)

    def test_directed_rejected(self):
        with pytest.raises(ValueError):
            reference_connected_components(
                from_edge_list([(0, 1)], directed=True)
            )

    def test_termination_counter_used(self):
        _, ops = reference_connected_components(ring_graph(8))
        assert ops.atomics > 0

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_property_matches_vectorized(self, data):
        n = data.draw(st.integers(min_value=1, max_value=12))
        m = data.draw(st.integers(min_value=0, max_value=24))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=m, max_size=m,
            )
        )
        g = from_edge_list(edges, n)
        ref, _ = reference_connected_components(g)
        vec = connected_components(g).labels
        assert np.array_equal(ref, vec)
