"""Tests for the cycle-level stream scheduler — and the validation that
the analytic cost model's saturation law matches the simulated hardware
mechanism."""

import pytest

from repro.xmt.streams import StreamSimulator, StreamSimResult, StreamWorkload


class TestWorkload:
    def test_memory_pattern(self):
        w = StreamWorkload(instructions=6, memory_period=3)
        assert [w.is_memory(i) for i in range(6)] == [
            False, False, True, False, False, True
        ]
        assert w.memory_references == 2

    def test_all_memory(self):
        w = StreamWorkload(instructions=4, memory_period=1)
        assert all(w.is_memory(i) for i in range(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamWorkload(instructions=-1)
        with pytest.raises(ValueError):
            StreamWorkload(instructions=1, memory_period=0)


class TestSimulatorBasics:
    def test_empty_workload(self):
        res = StreamSimulator(4).run(StreamWorkload(0))
        assert res.cycles == 0
        assert res.utilization == 0.0

    def test_single_stream_alu_only(self):
        # memory_period larger than the instruction count: pure ALU.
        res = StreamSimulator(1, memory_latency_cycles=100).run(
            StreamWorkload(instructions=10, memory_period=11)
        )
        assert res.instructions_issued == 10
        assert res.cycles == 10
        assert res.utilization == 1.0

    def test_single_stream_all_memory(self):
        latency = 50
        res = StreamSimulator(1, memory_latency_cycles=latency).run(
            StreamWorkload(instructions=4, memory_period=1)
        )
        # Each reference: 1 issue + latency until the next can issue.
        assert res.cycles == 4 * latency
        assert res.utilization == pytest.approx(4 / (4 * latency))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSimulator(0)
        with pytest.raises(ValueError):
            StreamSimulator(1, memory_latency_cycles=0)

    def test_all_instructions_issued(self):
        res = StreamSimulator(8, memory_latency_cycles=20).run(
            StreamWorkload(instructions=30, memory_period=4)
        )
        assert res.instructions_issued == 8 * 30


class TestLatencyHiding:
    """The paper's §II claim, measured on the mechanism."""

    def test_enough_streams_hide_latency_completely(self):
        latency = 40
        sim = StreamSimulator(
            num_streams=latency + 1, memory_latency_cycles=latency
        )
        res = sim.run(StreamWorkload(instructions=100, memory_period=1))
        # One instruction per cycle once the pipeline fills.
        assert res.utilization > 0.95

    def test_utilization_monotone_in_streams(self):
        sim = StreamSimulator(memory_latency_cycles=60)
        curve = sim.utilization_curve(
            StreamWorkload(instructions=60, memory_period=2),
            [1, 2, 4, 8, 16, 32, 64, 128],
        )
        values = list(curve.values())
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_saturation_point_matches_analytic_law(self):
        latency = 30
        workload = StreamWorkload(instructions=90, memory_period=3)
        sim = StreamSimulator(memory_latency_cycles=latency)
        saturation = sim.saturation_streams(workload)
        below = StreamSimulator(
            num_streams=max(int(saturation // 2), 1),
            memory_latency_cycles=latency,
        ).run(workload)
        above = StreamSimulator(
            num_streams=int(saturation * 2),
            memory_latency_cycles=latency,
        ).run(workload)
        assert below.utilization < 0.7
        assert above.utilization > 0.9

    def test_sub_saturation_matches_latency_bound_formula(self):
        """Below saturation, cycles ~ chain length: the cost model's
        latency bound, validated against the mechanism."""
        latency = 50
        streams = 4  # far below saturation (~17 for period 3... use 4)
        w = StreamWorkload(instructions=60, memory_period=1)
        res = StreamSimulator(streams, latency).run(w)
        # Each stream is a serial chain of 60 memory round trips; with
        # so few streams the processor is idle most of the time and the
        # makespan is one chain's length.
        chain = 60 * latency
        assert res.cycles == pytest.approx(chain, rel=0.1)

    def test_throughput_bound_at_scale(self):
        """Above saturation, cycles ~ total instructions (issue bound)."""
        res = StreamSimulator(128, memory_latency_cycles=100).run(
            StreamWorkload(instructions=50, memory_period=2)
        )
        total = 128 * 50
        assert res.cycles == pytest.approx(total, rel=0.1)

    def test_128_streams_vs_600_cycle_latency(self):
        """The real machine's numbers: 128 streams cannot fully hide a
        600-cycle latency on a memory-only workload — consistent with
        the cost model's stream_utilization < 1."""
        res = StreamSimulator(128, memory_latency_cycles=600).run(
            StreamWorkload(instructions=30, memory_period=1)
        )
        assert 0.15 < res.utilization < 0.35  # ~128/600

    def test_result_dataclass(self):
        res = StreamSimResult(cycles=100, instructions_issued=50,
                              num_streams=4)
        assert res.utilization == 0.5
        assert res.effective_ipc == 0.5
