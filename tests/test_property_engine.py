"""Property-based tests on the BSP engine with randomized programs:
conservation and termination invariants that must hold for *any*
well-formed vertex program."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import BSPEngine, VertexProgram
from repro.graph import from_edge_list


class RandomFlood(VertexProgram):
    """A deterministic pseudo-random program: each vertex forwards a
    counter to a hashed subset of neighbours for a bounded number of
    rounds.  Exercises arbitrary activation patterns."""

    def __init__(self, rounds: int, salt: int):
        self.rounds = rounds
        self.salt = salt

    def initial_value(self, vertex, graph):
        return 0

    def compute(self, ctx, messages):
        ctx.value += len(messages)
        if ctx.superstep < self.rounds:
            for n in ctx.neighbors().tolist():
                if (n * 2654435761 + self.salt + ctx.superstep) % 3 == 0:
                    ctx.send(n, 1)
        ctx.vote_to_halt()


@st.composite
def graph_and_program(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    m = draw(st.integers(min_value=0, max_value=30))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m, max_size=m,
        )
    )
    rounds = draw(st.integers(min_value=0, max_value=5))
    salt = draw(st.integers(min_value=0, max_value=10**6))
    return from_edge_list(edges, n), RandomFlood(rounds, salt)


class TestEngineInvariants:
    @given(graph_and_program())
    @settings(max_examples=40, deadline=None)
    def test_message_conservation(self, data):
        """Every sent message is delivered exactly once: the sum of
        per-vertex receive counts equals the messages sent."""
        graph, program = data
        res = BSPEngine(graph).run(program)
        delivered = sum(res.values)  # program counts receipts
        sent = res.total_messages
        assert delivered == sent

    @given(graph_and_program())
    @settings(max_examples=40, deadline=None)
    def test_terminates_within_round_bound(self, data):
        """Sends stop after `rounds`, so supersteps <= rounds + 2."""
        graph, program = data
        res = BSPEngine(graph).run(program)
        assert res.num_supersteps <= program.rounds + 2

    @given(graph_and_program())
    @settings(max_examples=40, deadline=None)
    def test_histories_parallel(self, data):
        graph, program = data
        res = BSPEngine(graph).run(program)
        assert len(res.active_per_superstep) == res.num_supersteps
        assert len(res.messages_per_superstep) == res.num_supersteps
        assert len(res.trace) == res.num_supersteps

    @given(graph_and_program())
    @settings(max_examples=40, deadline=None)
    def test_last_superstep_sends_nothing(self, data):
        graph, program = data
        res = BSPEngine(graph).run(program)
        assert res.messages_per_superstep[-1] == 0

    @given(graph_and_program())
    @settings(max_examples=30, deadline=None)
    def test_rerun_is_deterministic(self, data):
        graph, program = data
        a = BSPEngine(graph).run(program)
        b = BSPEngine(graph).run(program)
        assert a.values == b.values
        assert a.messages_per_superstep == b.messages_per_superstep

    @given(graph_and_program())
    @settings(max_examples=30, deadline=None)
    def test_trace_writes_account_messages(self, data):
        """Trace write accounting matches the send counts (the relation
        with_queue_design relies on)."""
        from repro.xmt.calibration import DEFAULT_COSTS

        graph, program = data
        res = BSPEngine(graph).run(program)
        for region, sent, active in zip(
            res.trace, res.messages_per_superstep, res.active_per_superstep
        ):
            expected = sent * DEFAULT_COSTS.message_enqueue_writes + active
            assert region.writes == expected
