"""Unit tests for the CSR graph store."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list
from repro.graph.csr import OFFSET_DTYPE, VERTEX_DTYPE


def triangle_graph():
    return from_edge_list([(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_basic_shape(self):
        g = triangle_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_arcs == 6

    def test_row_ptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(row_ptr=np.array([1, 2]), col_idx=np.array([0, 0]))

    def test_row_ptr_must_match_col_idx(self):
        with pytest.raises(ValueError, match="must equal"):
            CSRGraph(row_ptr=np.array([0, 3]), col_idx=np.array([0]))

    def test_row_ptr_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(row_ptr=np.array([0, 2, 1, 3]), col_idx=np.zeros(3, int))

    def test_col_idx_range_checked(self):
        with pytest.raises(ValueError, match="out-of-range"):
            CSRGraph(row_ptr=np.array([0, 1]), col_idx=np.array([5]))

    def test_empty_row_ptr_rejected(self):
        with pytest.raises(ValueError, match="at least one entry"):
            CSRGraph(row_ptr=np.empty(0, int), col_idx=np.empty(0, int))

    def test_weights_must_be_parallel(self):
        with pytest.raises(ValueError, match="parallel"):
            CSRGraph(
                row_ptr=np.array([0, 1]),
                col_idx=np.array([0]),
                weights=np.array([1.0, 2.0]),
            )

    def test_dtypes_normalized(self):
        g = CSRGraph(
            row_ptr=np.array([0, 1], dtype=np.int32),
            col_idx=np.array([0], dtype=np.int16),
        )
        assert g.row_ptr.dtype == OFFSET_DTYPE
        assert g.col_idx.dtype == VERTEX_DTYPE


class TestReadOnlyContract:
    def test_arrays_not_writeable(self):
        g = triangle_graph()
        with pytest.raises(ValueError):
            g.row_ptr[0] = 7
        with pytest.raises(ValueError):
            g.col_idx[0] = 7

    def test_neighbors_view_not_writeable(self):
        g = triangle_graph()
        with pytest.raises(ValueError):
            g.neighbors(0)[0] = 9

    def test_degrees_cached_and_frozen(self):
        g = triangle_graph()
        d1 = g.degrees()
        d2 = g.degrees()
        assert d1 is d2
        with pytest.raises(ValueError):
            d1[0] = 3


class TestAdjacency:
    def test_neighbors_sorted(self):
        g = from_edge_list([(0, 2), (0, 1), (0, 3)])
        assert g.neighbors(0).tolist() == [1, 2, 3]

    def test_degree_and_degrees_agree(self):
        g = triangle_graph()
        assert [g.degree(v) for v in range(3)] == g.degrees().tolist()

    def test_neighbors_out_of_range(self):
        g = triangle_graph()
        with pytest.raises(IndexError):
            g.neighbors(3)
        with pytest.raises(IndexError):
            g.degree(-1)

    def test_has_edge(self):
        g = triangle_graph()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 0)

    def test_has_edge_unsorted_path(self):
        g = triangle_graph()
        object.__setattr__(g, "sorted_adjacency", False)
        assert g.has_edge(0, 2)
        assert not g.has_edge(2, 2)

    def test_arc_sources_parallel_to_col_idx(self):
        g = triangle_graph()
        src = g.arc_sources()
        assert src.size == g.num_arcs
        for u, v in zip(src, g.col_idx):
            assert g.has_edge(int(u), int(v))

    def test_edges_iterates_unique_edges(self):
        g = triangle_graph()
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_edges_directed(self):
        g = from_edge_list([(0, 1), (1, 2)], directed=True)
        assert sorted(g.edges()) == [(0, 1), (1, 2)]


class TestWeighted:
    def test_edge_weights(self):
        g = from_edge_list([(0, 1)], weights=[2.5])
        assert g.edge_weights(0).tolist() == [2.5]
        assert g.edge_weights(1).tolist() == [2.5]

    def test_edge_weights_unweighted_raises(self):
        with pytest.raises(ValueError, match="unweighted"):
            triangle_graph().edge_weights(0)

    def test_edge_weights_out_of_range(self):
        g = from_edge_list([(0, 1)], weights=[1.0])
        with pytest.raises(IndexError):
            g.edge_weights(5)


class TestReverse:
    def test_reverse_directed(self):
        g = from_edge_list([(0, 1), (0, 2), (2, 1)], directed=True)
        r = g.reverse()
        assert sorted(r.edges()) == [(1, 0), (1, 2), (2, 0)]
        assert r.sorted_adjacency

    def test_reverse_undirected_is_identity(self):
        g = triangle_graph()
        assert g.reverse() is g

    def test_reverse_weighted(self):
        g = from_edge_list(
            [(0, 1), (1, 2)], weights=[5.0, 7.0], directed=True
        )
        r = g.reverse()
        assert r.edge_weights(1).tolist() == [5.0]
        assert r.edge_weights(2).tolist() == [7.0]

    def test_reverse_weighted_directed_sorted_adjacency(self):
        """Transposed adjacency runs stay sorted with weights paired."""
        rng = np.random.default_rng(3)
        n = 40
        edges = [
            (int(rng.integers(n)), int(rng.integers(n))) for _ in range(200)
        ]
        edges = [(u, v) for u, v in edges if u != v]
        weights = rng.uniform(0.5, 9.5, size=len(edges))
        g = from_edge_list(edges, num_vertices=n, weights=weights, directed=True)
        r = g.reverse()
        src = g.arc_sources()
        expected = {}
        for u, v, w in zip(src.tolist(), g.col_idx.tolist(), g.weights.tolist()):
            expected.setdefault(v, []).append((u, w))
        for v in range(n):
            nbrs = r.neighbors(v)
            assert np.array_equal(nbrs, np.sort(nbrs))
            got = list(zip(nbrs.tolist(), r.edge_weights(v).tolist()))
            assert sorted(got) == sorted(expected.get(v, []))
        # Double transpose is the original arc set, weights included.
        rr = r.reverse()
        assert np.array_equal(rr.row_ptr, g.row_ptr)
        assert np.array_equal(rr.col_idx, g.col_idx)
        np.testing.assert_array_equal(rr.weights, g.weights)


def test_memory_footprint_counts_all_arrays():
    g = from_edge_list([(0, 1)], weights=[1.0])
    expected = g.row_ptr.nbytes + g.col_idx.nbytes + g.weights.nbytes
    assert g.memory_footprint_bytes() == expected


def test_len_is_num_vertices():
    assert len(triangle_graph()) == 3
