"""Flight recorder: record codec, ring semantics, watchdog, and the
engine integration (stall detection, postmortem bundles, bounded close).

The concurrency tests exercise the documented reader guarantee — a
sample that races the single writer may *under-report* records but can
never return a torn one — with a real writer process hammering a ring
while the parent decodes it.
"""

import json
import os
import signal
import time
from multiprocessing import Process

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import DenseBSPEngine, ShardedBSPEngine
from repro.bsp.parallel import (
    ShardedWorkerError,
    WorkerStallError,
    _flight_recorder_from_env,
)
from repro.bsp_algorithms import DenseConnectedComponents
from repro.graph import rmat
from repro.telemetry.flightrec import (
    EV_ENTER,
    EV_EXIT,
    EV_PROGRESS,
    EV_RSS,
    HEADER_SIZE,
    PH_GATHER,
    PH_IDLE,
    PH_RUN,
    PH_SCATTER,
    RECORD_SIZE,
    FlightRecorder,
    RingWriter,
    StallWatchdog,
    _pack_record,
    _unpack_record,
    attach_status,
    decode_ring,
    list_postmortems,
    load_postmortem,
    read_beacons,
    straggler_skew_ns,
)
from tests.test_dense_engine import assert_results_equal

KINDS = [EV_ENTER, EV_EXIT, EV_PROGRESS, EV_RSS]
PHASES = [PH_IDLE, PH_RUN, PH_SCATTER, PH_GATHER]

I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


# -- record codec -----------------------------------------------------------


class TestRecordCodec:
    @settings(deadline=None, max_examples=50)
    @given(
        seq=st.integers(min_value=0, max_value=2**64 - 1),
        t_ns=I64,
        step=I64,
        a=I64,
        b=I64,
        kind=st.sampled_from(KINDS),
        phase=st.sampled_from(PHASES),
    )
    def test_roundtrip(self, seq, t_ns, step, a, b, kind, phase):
        blob = _pack_record(seq, t_ns, step, a, b, kind, phase)
        assert len(blob) == RECORD_SIZE
        rec = _unpack_record(blob)
        assert rec is not None
        assert (rec.seq, rec.t_ns, rec.step, rec.a, rec.b) == (
            seq, t_ns, step, a, b,
        )
        assert (rec.kind, rec.phase) == (kind, phase)

    @settings(deadline=None, max_examples=50)
    @given(
        offset=st.integers(min_value=0, max_value=RECORD_SIZE - 1),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_any_corrupt_byte_is_rejected(self, offset, flip):
        blob = bytearray(_pack_record(7, 123, 2, 10, 20, EV_PROGRESS, PH_RUN))
        blob[offset] ^= flip
        assert _unpack_record(bytes(blob)) is None

    def test_zeroed_slot_is_rejected(self):
        # An unwritten slot is all zeroes; CRC32(b"\0"*44) != 0.
        assert _unpack_record(b"\x00" * RECORD_SIZE) is None

    def test_unknown_kind_and_phase_are_rejected(self):
        assert _unpack_record(_pack_record(0, 0, 0, 0, 0, 99, PH_RUN)) is None
        assert _unpack_record(_pack_record(0, 0, 0, 0, 0, EV_RSS, 99)) is None


# -- ring semantics ---------------------------------------------------------


@pytest.fixture
def recorder(tmp_path):
    rec = FlightRecorder(
        capacity=8,
        postmortem_dir=tmp_path / "postmortem",
        beacon_dir=tmp_path / "flightrec",
    )
    yield rec
    rec.close()


class TestRing:
    def test_wraparound_keeps_newest_capacity_records(self, recorder):
        recorder.open(1)
        writer = RingWriter(recorder.worker_spec()["shm"], 8, 0)
        for i in range(30):
            writer.record(EV_PROGRESS, PH_RUN, step=0, a=i, b=30)
        events = recorder.events(0)
        assert [rec.seq for rec in events] == list(range(22, 30))
        assert [rec.a for rec in events] == list(range(22, 30))
        assert recorder.write_seq(0) == 30
        writer.close()

    def test_writer_resumes_published_sequence(self, recorder):
        recorder.open(1)
        spec = recorder.worker_spec()
        first = RingWriter(spec["shm"], 8, 0)
        first.record(EV_ENTER, PH_RUN)
        first.close()
        second = RingWriter(spec["shm"], 8, 0)
        second.record(EV_EXIT, PH_RUN)
        second.close()
        assert [rec.seq for rec in recorder.events(0)] == [0, 1]

    def test_rings_are_per_worker(self, recorder):
        recorder.open(2)
        spec = recorder.worker_spec()
        for w in (0, 1):
            writer = RingWriter(spec["shm"], 8, w)
            writer.record(EV_RSS, PH_IDLE, a=1000 + w)
            writer.close()
        assert [rec.a for rec in recorder.events(0)] == [1000]
        assert [rec.a for rec in recorder.events(1)] == [1001]

    def test_decode_ring_rejects_mismatched_geometry(self, recorder):
        recorder.open(1)
        region = bytes(HEADER_SIZE + 8 * RECORD_SIZE)
        assert decode_ring(region, capacity=8) == []  # header says cap 0
        assert decode_ring(recorder._region(0), capacity=4) == []

    def test_status_tracks_enter_progress_exit(self, recorder):
        recorder.open(1)
        writer = RingWriter(recorder.worker_spec()["shm"], 8, 0)
        writer.record(EV_ENTER, PH_GATHER, step=3)
        writer.record(EV_PROGRESS, PH_GATHER, step=3, a=50, b=200)
        status = recorder.status(0)
        assert (status.phase, status.step) == ("gather", 3)
        assert (status.progress_arcs, status.progress_total) == (50, 200)
        assert status.progress_ratio == pytest.approx(0.25)
        writer.record(EV_RSS, PH_GATHER, a=1 << 20)
        writer.record(EV_EXIT, PH_GATHER, step=3, a=7, b=1000)
        status = recorder.status(0)
        assert status.phase == "idle"
        assert status.rss_bytes == 1 << 20
        # A fresh ENTER resets the arc range; the idle worker after the
        # matching EXIT reads as fully caught up.
        writer.record(EV_ENTER, PH_RUN, step=4)
        writer.record(EV_EXIT, PH_RUN, step=4)
        assert recorder.status(0).progress_ratio == 1.0
        writer.close()


# -- torn-read safety against a real writer process -------------------------


def _hammer_ring(shm_name, capacity, total):
    """Writer-process body: ``total`` records whose fields are linked by
    an invariant (b == 3a + 1) that any torn read would break."""
    writer = RingWriter(shm_name, capacity, 0)
    for i in range(total):
        writer.record(EV_PROGRESS, PH_RUN, step=i % 17, a=i, b=3 * i + 1)
    writer.close()


class TestTornReads:
    @settings(deadline=None, max_examples=5)
    @given(capacity=st.sampled_from([8, 32, 256]))
    def test_concurrent_sampling_never_yields_torn_records(
        self, tmp_path_factory, capacity
    ):
        """Sample continuously while a writer process laps the ring many
        times over; every decoded record must satisfy the invariant."""
        tmp = tmp_path_factory.mktemp("flightrec")
        recorder = FlightRecorder(
            capacity=capacity,
            postmortem_dir=tmp / "postmortem",
            beacon_dir=None,
        )
        recorder.open(1)
        total = capacity * 40
        proc = Process(
            target=_hammer_ring,
            args=(recorder.worker_spec()["shm"], capacity, total),
        )
        proc.start()
        try:
            decoded = 0
            while proc.is_alive() or decoded == 0:
                events = recorder.events(0)
                decoded += len(events)
                prev_seq = -1
                for rec in events:
                    assert rec.b == 3 * rec.a + 1, rec
                    assert rec.seq == rec.a, rec
                    assert rec.seq > prev_seq
                    prev_seq = rec.seq
                if not proc.is_alive() and decoded:
                    break
        finally:
            proc.join(timeout=30)
            recorder.close()
        assert proc.exitcode == 0


# -- watchdog ---------------------------------------------------------------


class TestWatchdog:
    def test_idle_workers_never_stall(self, recorder):
        recorder.open(1)
        writer = RingWriter(recorder.worker_spec()["shm"], 8, 0)
        writer.record(EV_EXIT, PH_RUN)  # phase closes -> idle
        writer.close()
        time.sleep(0.05)
        assert recorder.stalled_workers(0.01) == []

    def test_open_phase_past_deadline_stalls(self, recorder):
        recorder.open(1)
        writer = RingWriter(recorder.worker_spec()["shm"], 8, 0)
        writer.record(EV_ENTER, PH_GATHER, step=1)
        writer.close()
        time.sleep(0.05)
        assert recorder.stalled_workers(0.01) == [0]
        assert recorder.stalled_workers(60.0) == []

    def test_watchdog_fires_on_stall_once(self, recorder):
        recorder.open(1)
        writer = RingWriter(recorder.worker_spec()["shm"], 8, 0)
        writer.record(EV_ENTER, PH_SCATTER, step=0)
        writer.close()
        hits = []
        dog = StallWatchdog(
            recorder,
            stall_timeout=0.05,
            poll_interval=0.02,
            on_stall=lambda w, age: hits.append((w, age)),
        )
        dog.start()
        try:
            deadline = time.monotonic() + 5
            while not hits and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            dog.stop()
        assert [w for w, _ in hits] == [0]
        assert dog.stall_events == 1
        assert 0 in dog.stalled
        rows = dog.snapshot()
        assert rows and rows[0]["phase"] == "scatter"


class TestStragglerSkew:
    def test_degenerate_inputs(self):
        assert straggler_skew_ns([]) == (0, 0)
        assert straggler_skew_ns([5]) == (0, 0)

    def test_balanced_barrier_has_no_stragglers(self):
        skew, count = straggler_skew_ns([100, 101, 102, 103])
        assert skew == 1
        assert count == 0

    def test_slow_worker_classifies(self):
        ms = 1_000_000
        skew, count = straggler_skew_ns([10 * ms, 10 * ms, 10 * ms, 50 * ms])
        assert skew == 40 * ms
        assert count == 1

    def test_submillisecond_gaps_never_classify(self):
        # 3x the median but only 200us over it.
        assert straggler_skew_ns([100_000, 100_000, 300_000])[1] == 0


# -- beacons and postmortem retrieval ---------------------------------------


class TestBeacons:
    def test_beacon_lifecycle_and_attach(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8,
            postmortem_dir=tmp_path / "postmortem",
            beacon_dir=tmp_path / "flightrec",
        )
        recorder.open(2)
        try:
            beacons = read_beacons(tmp_path / "flightrec")
            assert len(beacons) == 1
            assert beacons[0]["pid"] == os.getpid()
            assert beacons[0]["num_workers"] == 2
            rows = attach_status(beacons[0])
            assert [row["worker"] for row in rows] == [0, 1]
            assert all(row["phase"] == "idle" for row in rows)
        finally:
            recorder.close()
        assert read_beacons(tmp_path / "flightrec") == []

    def test_stale_beacon_is_cleaned_up(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"pid": 2**22 + 12345, "shm": "x"}))
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        assert read_beacons(tmp_path) == []
        assert not bogus.exists()

    def test_attach_vanished_block_is_empty(self):
        assert attach_status({"shm": "no-such-block", "capacity": 8,
                              "num_workers": 1}) == []


class TestPostmortemFiles:
    def test_dump_list_load_roundtrip(self, recorder):
        recorder.open(1)
        path = recorder.dump_postmortem(
            reason="stall",
            error="boom",
            engine={"rss": np.int64(4096)},  # numpy must coerce
            last_barrier={"phase": "gather"},
        )
        pm_id = path.stem
        assert list_postmortems(recorder.postmortem_dir) == [pm_id]
        bundle = load_postmortem(recorder.postmortem_dir, pm_id)
        assert bundle["reason"] == "stall"
        assert bundle["error"] == "boom"
        assert bundle["engine"]["rss"] == 4096
        assert len(bundle["workers"]) == 1

    def test_malformed_ids_are_refused(self, tmp_path):
        (tmp_path / "pm-x.json").write_text("{}")
        assert load_postmortem(tmp_path, "../pm-x") is None
        assert load_postmortem(tmp_path, "pm x") is None
        assert load_postmortem(tmp_path, "") is None
        assert load_postmortem(tmp_path, "pm-missing") is None
        assert load_postmortem(tmp_path, "pm-x") == {}

    def test_list_missing_directory(self, tmp_path):
        assert list_postmortems(tmp_path / "nope") == []


# -- engine integration -----------------------------------------------------


class SleepyGather(DenseConnectedComponents):
    """CC whose payload hook sleeps forever on trap vertices (picklable
    at module level for the fork/spawn worker bootstrap)."""

    def __init__(self, trap_vertices):
        self.trap = np.asarray(trap_vertices, dtype=np.int64)

    def arc_payload(self, graph, values, selection):
        if np.isin(graph.arc_sources()[selection], self.trap).any():
            time.sleep(60.0)
        return super().arc_payload(graph, values, selection)


class CrashyProgram(DenseConnectedComponents):
    def arc_payload(self, graph, values, selection):
        raise ValueError("injected crash for postmortem test")


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=7, edge_factor=8, seed=7)


def _make_recorder(tmp_path):
    return FlightRecorder(
        postmortem_dir=tmp_path / "postmortem",
        beacon_dir=tmp_path / "flightrec",
    )


class TestEngineIntegration:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_dense_with_recorder_on(self, graph, workers, tmp_path):
        dense = DenseBSPEngine(graph).run(DenseConnectedComponents())
        with ShardedBSPEngine(
            graph,
            num_workers=workers,
            flight_recorder=_make_recorder(tmp_path),
        ) as engine:
            sharded = engine.run(DenseConnectedComponents())
            assert_results_equal(dense, sharded)
            kinds = {
                rec.kind_name
                for w in range(workers)
                for rec in engine.flight_recorder.events(w)
            }
            assert {"enter", "exit", "rss", "progress"} <= kinds
            rows = engine.worker_status()
            assert [row["worker"] for row in rows] == list(range(workers))
            assert all(row["alive"] for row in rows)

    def test_recorder_off_means_off(self, graph):
        with ShardedBSPEngine(
            graph, num_workers=2, flight_recorder=False
        ) as engine:
            engine.run(DenseConnectedComponents())
            assert engine.flight_recorder is None
            # Liveness rows survive without the recorder; ring-derived
            # columns (phase/progress) do not.
            rows = engine.worker_status()
            assert [row["worker"] for row in rows] == [0, 1]
            assert all(row["alive"] for row in rows)
            assert all("phase" not in row for row in rows)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_RECORDER", raising=False)
        assert _flight_recorder_from_env() is True
        for off in ("0", "false", "no", "OFF"):
            monkeypatch.setenv("REPRO_FLIGHT_RECORDER", off)
            assert _flight_recorder_from_env() is False
        monkeypatch.setenv("REPRO_FLIGHT_RECORDER", "1")
        assert _flight_recorder_from_env() is True

    def test_skew_samples_accumulate(self, graph, tmp_path):
        with ShardedBSPEngine(
            graph,
            num_workers=2,
            flight_recorder=_make_recorder(tmp_path),
        ) as engine:
            engine.run(DenseConnectedComponents())
            samples = engine.drain_skew_samples()
            assert samples and all(s >= 0.0 for s in samples)
            assert engine.drain_skew_samples() == []  # drained
            assert engine.superstep_skew_seconds >= 0.0

    def test_stall_raises_and_dumps_postmortem(self, graph, tmp_path):
        engine = ShardedBSPEngine(
            graph,
            num_workers=2,
            stall_timeout=0.5,
            flight_recorder=_make_recorder(tmp_path),
        )
        try:
            trap = np.flatnonzero(engine.assignment == 1)
            t0 = time.monotonic()
            with pytest.raises(WorkerStallError) as excinfo:
                engine.run(SleepyGather(trap))
            detected = time.monotonic() - t0
            assert detected < 10.0  # nowhere near the 60s sleep
            error = excinfo.value
            assert error.worker == 1
            assert engine.stall_detected
            assert engine.stall_events >= 1
            bundle = load_postmortem(
                tmp_path / "postmortem", error.postmortem_id
            )
            assert bundle["format_version"] == 1
            assert bundle["reason"] == "stall"
            assert bundle["last_barrier"]["phase"] == "gather"
            assert bundle["partition"]["policy"] == "hash"
            assert bundle["workers"][1]["status"]["phase"] == "gather"
        finally:
            t1 = time.monotonic()
            engine.close()
            assert time.monotonic() - t1 < 10.0  # bounded despite sleeper
            assert engine.workers_alive == 0

    def test_crash_dumps_postmortem_with_traceback(self, graph, tmp_path):
        with ShardedBSPEngine(
            graph,
            num_workers=2,
            flight_recorder=_make_recorder(tmp_path),
        ) as engine:
            with pytest.raises(ShardedWorkerError) as excinfo:
                engine.run(CrashyProgram())
            error = excinfo.value
            assert error.worker_tracebacks
            assert any(
                "injected crash" in tb
                for tb in error.worker_tracebacks.values()
            )
            bundle = load_postmortem(
                tmp_path / "postmortem", error.postmortem_id
            )
            assert bundle["reason"] in {"worker_crash", "worker_error"}
            assert "injected crash" in bundle["error"]
            # Pool recovers for the next run.
            result = engine.run(DenseConnectedComponents())
            dense = DenseBSPEngine(graph).run(DenseConnectedComponents())
            assert np.array_equal(result.values, dense.values)

    def test_sigstop_cannot_wedge_close(self, graph, tmp_path):
        """Satellite regression: a SIGSTOPed worker must not hang
        ``close()`` — join escalates terminate -> kill (SIGSTOP queues
        SIGTERM without delivering it; SIGKILL always lands)."""
        engine = ShardedBSPEngine(
            graph,
            num_workers=2,
            stall_timeout=0.5,
            flight_recorder=_make_recorder(tmp_path),
        )
        try:
            engine.run(DenseConnectedComponents())  # warm, all healthy
            victim = engine.worker_status()[1]["pid"]
            os.kill(victim, signal.SIGSTOP)
            t0 = time.monotonic()
            engine.close()
            elapsed = time.monotonic() - t0
            assert elapsed < 6.0, f"close took {elapsed:.1f}s"
            assert engine.workers_alive == 0
        finally:
            try:
                os.kill(victim, signal.SIGCONT)
            except (OSError, UnboundLocalError):
                pass
            engine.close()

    def test_stall_timeout_validation(self, graph):
        with pytest.raises(ValueError):
            ShardedBSPEngine(graph, num_workers=2, stall_timeout=0.0)
        with pytest.raises(ValueError):
            ShardedBSPEngine(graph, num_workers=2, stall_timeout=-1.0)
