"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    from_edge_array,
    from_edge_list,
    load_graph,
    read_edge_list,
    save_graph,
    write_edge_list,
)
from repro.graph.dag import ascending_orientation, degree_orientation
from repro.graph.properties import (
    _label_components,
    _ragged_arange,
    is_symmetric,
    reachable_from,
)
from repro.graph.subgraph import extract_subgraph


@st.composite
def edge_lists(draw, max_vertices=24, max_edges=60):
    """Random (edges, num_vertices) pairs, duplicates and loops allowed."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return edges, n


class TestCSRInvariants:
    @given(edge_lists())
    def test_row_ptr_monotone_and_consistent(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        assert g.row_ptr[0] == 0
        assert g.row_ptr[-1] == g.col_idx.size
        assert np.all(np.diff(g.row_ptr) >= 0)

    @given(edge_lists())
    def test_undirected_always_symmetric(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        assert is_symmetric(g)

    @given(edge_lists())
    def test_adjacency_sorted_and_simple(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        for v in range(n):
            nbrs = g.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)  # sorted, no duplicates
            assert v not in nbrs  # no self loops

    @given(edge_lists())
    def test_edges_iterator_matches_input_edge_set(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        expected = {
            (min(u, v), max(u, v)) for u, v in edges if u != v
        }
        assert set(g.edges()) == expected

    @given(edge_lists())
    def test_degree_sum_equals_arcs(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        assert int(g.degrees().sum()) == g.num_arcs

    @given(edge_lists())
    def test_has_edge_agrees_with_neighbors(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        for u, v in edges[:10]:
            if u != v:
                assert g.has_edge(u, v)

    @given(edge_lists())
    def test_arc_sources_expansion(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        src = g.arc_sources()
        for v in range(n):
            lo, hi = int(g.row_ptr[v]), int(g.row_ptr[v + 1])
            assert np.all(src[lo:hi] == v)

    @given(edge_lists())
    def test_reverse_of_directed_is_involution(self, data):
        edges, n = data
        g = from_edge_list(edges, n, directed=True)
        rr = g.reverse().reverse()
        assert np.array_equal(rr.row_ptr, g.row_ptr)
        assert np.array_equal(rr.col_idx, g.col_idx)


class TestOrientationProperties:
    @given(edge_lists())
    def test_orientation_partitions_arcs(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        dag = ascending_orientation(g)
        assert dag.num_arcs == g.num_arcs // 2
        assert np.all(dag.arc_sources() < dag.col_idx)

    @given(edge_lists())
    def test_degree_orientation_is_acyclic_total_order(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        dag = degree_orientation(g)
        assert dag.num_arcs == g.num_arcs // 2
        deg = g.degrees()
        src, dst = dag.arc_sources(), dag.col_idx
        key_src = deg[src] * (n + 1) + src
        key_dst = deg[dst] * (n + 1) + dst
        assert np.all(key_src < key_dst)


class TestComponentsProperties:
    @given(edge_lists())
    @settings(max_examples=50)
    def test_labels_constant_on_reachable_sets(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        labels = _label_components(g)
        for v in range(min(n, 5)):
            mask = reachable_from(g, v)
            assert len(set(labels[mask].tolist())) == 1

    @given(edge_lists())
    def test_labels_are_component_minima(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        labels = _label_components(g)
        for label in np.unique(labels):
            members = np.flatnonzero(labels == label)
            assert members.min() == label


class TestRaggedArange:
    @given(st.lists(st.integers(min_value=0, max_value=12), max_size=20))
    def test_matches_naive_concatenation(self, counts):
        counts = np.asarray(counts, dtype=np.int64)
        expected = np.concatenate(
            [np.arange(c) for c in counts] or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(_ragged_arange(counts), expected)


class TestSubgraphProperties:
    @given(edge_lists())
    @settings(max_examples=50)
    def test_subgraph_edges_subset_of_original(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        keep = list(range(0, n, 2))
        sub, ids = extract_subgraph(g, keep)
        for u, v in sub.edges():
            assert g.has_edge(int(ids[u]), int(ids[v]))

    @given(edge_lists())
    @settings(max_examples=50)
    def test_full_subgraph_is_identity(self, data):
        edges, n = data
        g = from_edge_list(edges, n)
        sub, ids = extract_subgraph(g, range(n))
        assert np.array_equal(sub.col_idx, g.col_idx)
        assert np.array_equal(ids, np.arange(n))


class TestIORoundTrips:
    @given(data=edge_lists())
    @settings(max_examples=30)
    def test_edge_list_round_trip(self, tmp_path_factory, data):
        edges, n = data
        g = from_edge_list(edges, n)
        path = tmp_path_factory.mktemp("io") / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, num_vertices=n)
        assert np.array_equal(g.row_ptr, g2.row_ptr)
        assert np.array_equal(g.col_idx, g2.col_idx)

    @given(data=edge_lists())
    @settings(max_examples=30)
    def test_snapshot_round_trip(self, tmp_path_factory, data):
        edges, n = data
        g = from_edge_list(edges, n)
        path = tmp_path_factory.mktemp("io") / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert np.array_equal(g.row_ptr, g2.row_ptr)
        assert np.array_equal(g.col_idx, g2.col_idx)
        assert g.directed == g2.directed


class TestBuilderNormalizationIdempotent:
    @given(edge_lists())
    def test_rebuilding_from_edges_is_stable(self, data):
        edges, n = data
        g1 = from_edge_list(edges, n)
        g2 = from_edge_array(
            np.asarray(list(g1.edges()) or np.empty((0, 2), dtype=np.int64)),
            n,
        )
        assert np.array_equal(g1.row_ptr, g2.row_ptr)
        assert np.array_equal(g1.col_idx, g2.col_idx)
