"""Tests for the Barabási–Albert generator and the paper's §V triangle-
density projection: "the number of intermediate messages will grow
quickly with a higher triangle density"."""

import numpy as np
import pytest

from repro.bsp_algorithms import bsp_count_triangles
from repro.graph import barabasi_albert, watts_strogatz
from repro.graph.properties import degree_statistics, is_symmetric
from repro.graphct import clustering_coefficients


class TestBarabasiAlbert:
    def test_size_and_simplicity(self):
        g = barabasi_albert(300, attachments=4, seed=1)
        assert g.num_vertices == 300
        assert g.num_edges == (300 - 4) * 4
        assert is_symmetric(g)
        assert not np.any(g.arc_sources() == g.col_idx)

    def test_scale_free_skew(self):
        g = barabasi_albert(1000, attachments=4, seed=2)
        stats = degree_statistics(g)
        assert stats.skew > 4
        assert stats.median_degree < stats.mean_degree

    def test_deterministic(self):
        a = barabasi_albert(200, attachments=3, seed=5)
        b = barabasi_albert(200, attachments=3, seed=5)
        assert np.array_equal(a.col_idx, b.col_idx)

    def test_triad_closure_raises_clustering(self):
        plain = barabasi_albert(600, attachments=6, seed=1)
        closed = barabasi_albert(
            600, attachments=6, seed=1, closure_prob=0.8
        )
        cc_plain = clustering_coefficients(plain).global_coefficient
        cc_closed = clustering_coefficients(closed).global_coefficient
        assert cc_closed > 1.5 * cc_plain

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vertices": 4, "attachments": 4},
            {"num_vertices": 10, "attachments": 0},
            {"num_vertices": 10, "attachments": 2, "closure_prob": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            barabasi_albert(**kwargs)


class TestTriangleDensityProjection:
    """§V: message volume tracks triangle density at fixed size."""

    def test_messages_grow_with_clustering(self):
        # Same n and degree sequence; rewiring is the clustering knob.
        dense = watts_strogatz(2000, k=10, rewire_prob=0.02, seed=1)
        sparse = watts_strogatz(2000, k=10, rewire_prob=0.9, seed=1)
        cc_dense = clustering_coefficients(dense).global_coefficient
        cc_sparse = clustering_coefficients(sparse).global_coefficient
        assert cc_dense > 3 * cc_sparse

        tri_dense = bsp_count_triangles(dense)
        tri_sparse = bsp_count_triangles(sparse)
        # More triangles -> more found-notification messages...
        assert tri_dense.total_triangles > 3 * tri_sparse.total_triangles
        # ...and a higher total message volume per edge.
        per_edge_dense = tri_dense.total_messages / dense.num_edges
        per_edge_sparse = tri_sparse.total_messages / sparse.num_edges
        assert per_edge_dense > per_edge_sparse

    def test_ba_closure_increases_bsp_messages(self):
        plain = barabasi_albert(600, attachments=6, seed=3)
        closed = barabasi_albert(
            600, attachments=6, seed=3, closure_prob=0.8
        )
        tri_plain = bsp_count_triangles(plain)
        tri_closed = bsp_count_triangles(closed)
        assert tri_closed.total_triangles > tri_plain.total_triangles
        assert (
            tri_closed.messages_per_superstep[2]
            > tri_plain.messages_per_superstep[2]
        )
