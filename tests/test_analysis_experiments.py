"""Tests for the experiment harness — the shape criteria of DESIGN.md §4."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentConfig,
    build_workload,
    run_cluster_anecdotes,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
)

#: Small but non-trivial config shared by every experiment test.
CONFIG = ExperimentConfig(scale=11, edge_factor=16, seed=1)


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(CONFIG)


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(CONFIG)


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(CONFIG)


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(CONFIG)


@pytest.fixture(scope="module")
def table1():
    return run_table1(CONFIG)


class TestConfig:
    def test_extrapolation_factor(self):
        assert CONFIG.extrapolation_factor == 2 ** (24 - 11)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(processor_counts=())
        with pytest.raises(ValueError):
            ExperimentConfig(processor_counts=(0,))
        with pytest.raises(ValueError):
            ExperimentConfig(scale=25, paper_scale=24)

    def test_workload_cached(self):
        a = build_workload(CONFIG)
        b = build_workload(CONFIG)
        assert a.graph is b.graph

    def test_workload_source_in_giant_component(self):
        wl = build_workload(CONFIG)
        from repro.graph.properties import reachable_from

        reached = reachable_from(wl.graph, wl.bfs_source)
        deg = wl.graph.degrees()
        assert reached.sum() > 0.5 * np.count_nonzero(deg > 0)


class TestFig1:
    def test_superstep_inflation(self, fig1):
        """BSP needs clearly more rounds than shared memory (paper 13/6)."""
        assert fig1.superstep_inflation >= 1.4

    def test_bsp_slower_total(self, fig1):
        # Band is wider than the paper's 4.1x because at this small test
        # scale the BSP superstep-overhead floor dominates; the scale-14
        # benchmark checks the tighter band.
        bsp, shm = fig1.totals_at(128)
        assert 2.0 <= bsp / shm <= 40.0

    def test_graphct_constant_work_per_iteration(self, fig1):
        """Fig. 1 right: per-iteration time is flat."""
        per_iter = list(fig1.graphct_times[128]["by_iteration"].values())
        assert max(per_iter) <= 1.2 * min(per_iter)

    def test_bsp_activity_collapses(self, fig1):
        """Fig. 1 left: first supersteps dominate, the tail is cheap."""
        per_ss = list(fig1.bsp_times[8]["by_iteration"].values())
        assert max(per_ss[:2]) > 2 * per_ss[-1]

    def test_heavy_supersteps_scale_paper_scale(self, fig1):
        """At paper-scale work, the heavy supersteps scale ~linearly."""
        by_p = fig1.bsp_times_paper_scale
        heavy0 = {p: by_p[p]["by_iteration"][0] for p in (8, 128)}
        assert heavy0[8] / heavy0[128] > 8  # >half of ideal 16x

    def test_graphct_linear_scaling_paper_scale(self, fig1):
        by_p = fig1.graphct_times_paper_scale
        t = {p: by_p[p]["total"] for p in (8, 128)}
        assert t[8] / t[128] > 10

    def test_light_supersteps_flat(self, fig1):
        """Small active sets stop scaling (paper: 'scalability reduces
        significantly')."""
        by_p = fig1.bsp_times
        last = max(by_p[8]["by_iteration"])
        tail = {p: by_p[p]["by_iteration"][last] for p in (8, 128)}
        assert tail[8] / tail[128] < 1.5


class TestFig2:
    def test_series_lengths_comparable(self, fig2):
        assert abs(len(fig2.bsp_messages) - len(fig2.frontier_sizes)) <= 1

    def test_messages_track_frontier_early(self, fig2):
        """Before the apex almost every message lands on a new vertex."""
        apex = int(np.argmax(fig2.frontier_sizes))
        # messages received at the apex level vs the apex frontier
        assert fig2.bsp_messages[apex - 1] <= 40 * fig2.frontier_sizes[apex]

    def test_messages_exceed_frontier_after_apex(self, fig2):
        assert fig2.peak_message_to_frontier_ratio > 10

    def test_messages_decline_at_tail(self, fig2):
        msgs = fig2.bsp_messages
        assert msgs[-1] <= 1
        apex = int(np.argmax(msgs))
        assert all(
            msgs[i] >= msgs[i + 1] for i in range(apex, len(msgs) - 1)
        )

    def test_bsp_and_graphct_agree_on_distances(self, fig2):
        assert np.array_equal(
            fig2.bsp_result.distances, fig2.graphct_result.distances
        )


class TestFig3:
    def test_levels_are_interior(self, fig3):
        assert 0 not in fig3.levels
        assert len(fig3.levels) >= 2

    def test_apex_level_scales_paper_scale(self, fig3):
        """The frontier-apex level scales near-linearly at paper scale."""
        best_bsp = max(
            fig3.speedup("bsp", lvl, paper_scale=True) for lvl in fig3.levels
        )
        best_shm = max(
            fig3.speedup("graphct", lvl, paper_scale=True)
            for lvl in fig3.levels
        )
        assert best_bsp > 8
        assert best_shm > 8

    def test_small_levels_flat(self, fig3):
        """First interior level is tiny: no speedup at miniature scale."""
        lvl = fig3.levels[0]
        assert fig3.speedup("graphct", lvl) < 2

    def test_bsp_levels_cost_more(self, fig3):
        for p in (8, 128):
            assert fig3.bsp_total[p] > fig3.graphct_total[p]

    def test_bsp_total_ratio_in_band(self, fig3):
        ratio = fig3.bsp_total[128] / fig3.graphct_total[128]
        assert 2.0 <= ratio <= 20.0


class TestFig4:
    def test_both_models_scale_linearly(self, fig4):
        """Fig. 4: both implementations scale ~linearly in P."""
        assert fig4.speedup("bsp", paper_scale=True) > 10
        assert fig4.speedup("graphct", paper_scale=True) > 10

    def test_bsp_slower(self, fig4):
        for p in (8, 128):
            assert fig4.bsp_times[p] > fig4.graphct_times[p]

    def test_write_blowup(self, fig4):
        assert fig4.write_ratio > 5

    def test_possible_exceeds_actual(self, fig4):
        assert fig4.bsp.possible_triangles > 2 * fig4.bsp.total_triangles

    def test_counts_agree_across_models(self, fig4):
        assert fig4.bsp.total_triangles == fig4.graphct.total_triangles


class TestTable1:
    def test_graphct_wins_every_row(self, table1):
        for row in table1.rows.values():
            assert row["ratio"] > 1.0

    def test_ratios_within_paper_band(self, table1):
        """'within a factor of 10' — 2-20x at experiment scale; the
        small test scale inflates the overhead-dominated CC row, so the
        upper bound here is looser (see test_bsp_slower_total)."""
        for row in table1.rows.values():
            assert 1.5 <= row["ratio"] <= 40.0

    def test_extrapolated_rows_present(self, table1):
        assert set(table1.extrapolated_rows) == set(table1.rows)
        for name in table1.rows:
            assert (
                table1.extrapolated_rows[name]["bsp"]
                > table1.rows[name]["bsp"]
            )

    def test_paper_reference_rows(self, table1):
        assert table1.paper_rows["connected_components"]["bsp"] == 5.40
        assert table1.paper_rows["triangle_counting"]["ratio"] == 9.4

    def test_max_ratio(self, table1):
        assert table1.max_ratio == max(
            r["ratio"] for r in table1.rows.values()
        )


class TestClusterAnecdotes:
    @pytest.fixture(scope="class")
    def anecdotes(self):
        return run_cluster_anecdotes(CONFIG)

    def test_all_within_order_of_magnitude(self, anecdotes):
        for name in anecdotes.rows:
            assert anecdotes.within_order_of_magnitude(name), name

    def test_sssp_scaling_goes_flat(self, anecdotes):
        """Kajdanowicz: flat from 30 to 85 machines."""
        assert 85 in anecdotes.sssp_flat_counts
        assert len(anecdotes.sssp_flat_counts) >= 3
