"""Tests for st-connectivity and the Graph500 harness/validator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.graph500 import (
    BFSValidationError,
    run_graph500,
    validate_bfs_result,
)
from repro.graph import from_edge_list, path_graph, ring_graph, rmat
from repro.graphct import breadth_first_search
from repro.graphct.st_connectivity import st_connectivity


class TestSTConnectivity:
    def test_path_graph(self):
        res = st_connectivity(path_graph(10), 0, 9)
        assert res.connected
        assert res.path_length == 9

    def test_same_vertex(self):
        res = st_connectivity(ring_graph(5), 3, 3)
        assert res.connected and res.path_length == 0
        assert res.vertices_touched == 1

    def test_adjacent(self):
        res = st_connectivity(ring_graph(5), 0, 1)
        assert res.path_length == 1

    def test_disconnected(self):
        g = from_edge_list([(0, 1), (2, 3)])
        res = st_connectivity(g, 0, 3)
        assert not res.connected
        assert res.path_length == -1

    def test_ring_halfway(self):
        res = st_connectivity(ring_graph(20), 0, 10)
        assert res.path_length == 10

    def test_validation(self):
        g = ring_graph(4)
        with pytest.raises(IndexError):
            st_connectivity(g, 0, 9)
        with pytest.raises(ValueError, match="undirected"):
            st_connectivity(from_edge_list([(0, 1)], directed=True), 0, 1)

    def test_touches_fewer_edges_than_full_bfs(self):
        g = rmat(scale=11, edge_factor=16, seed=1)
        deg = g.degrees()
        cands = np.flatnonzero(deg > 0)
        s, t = int(cands[0]), int(cands[-1])
        full = breadth_first_search(g, s)
        if full.distances[t] < 0:
            pytest.skip("endpoints not connected in this seed")
        res = st_connectivity(g, s, t)
        assert res.edges_examined <= sum(full.edges_examined)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_bfs_oracle(self, data):
        n = data.draw(st.integers(min_value=2, max_value=18))
        m = data.draw(st.integers(min_value=0, max_value=40))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=m,
                max_size=m,
            )
        )
        g = from_edge_list(edges, n)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        t = data.draw(st.integers(min_value=0, max_value=n - 1))
        oracle = breadth_first_search(g, s).distances[t]
        res = st_connectivity(g, s, t)
        if oracle < 0:
            assert not res.connected
        else:
            assert res.connected
            assert res.path_length == oracle


class TestBFSValidation:
    def test_valid_result_passes(self, small_rmat):
        src = int(np.flatnonzero(small_rmat.degrees() > 0)[0])
        res = breadth_first_search(small_rmat, src)
        validate_bfs_result(small_rmat, res)  # must not raise

    def test_corrupted_depth_detected(self, small_rmat):
        src = int(np.flatnonzero(small_rmat.degrees() > 0)[0])
        res = breadth_first_search(small_rmat, src)
        reached = np.flatnonzero(res.distances > 0)
        bad = res.distances.copy()
        bad[reached[0]] += 1
        res.distances = bad
        with pytest.raises(BFSValidationError):
            validate_bfs_result(small_rmat, res)

    def test_corrupted_parent_detected(self, small_rmat):
        src = int(np.flatnonzero(small_rmat.degrees() > 0)[0])
        res = breadth_first_search(small_rmat, src)
        reached = np.flatnonzero(res.distances > 1)
        bad = res.parents.copy()
        # Point a depth-2+ vertex at the root: depth rule breaks unless
        # they happen to be adjacent at depth 1 (excluded by selection).
        bad[reached[0]] = src
        res.parents = bad
        with pytest.raises(BFSValidationError):
            validate_bfs_result(small_rmat, res)

    def test_boundary_crossing_detected(self):
        g = from_edge_list([(0, 1), (1, 2)])
        res = breadth_first_search(g, 0)
        res.distances = np.array([0, 1, -1])  # 2 reachable but unmarked
        res.parents = np.array([-1, 0, -1])
        with pytest.raises(BFSValidationError, match="boundary"):
            validate_bfs_result(g, res)

    def test_parent_on_unreached_detected(self):
        g = from_edge_list([(0, 1), (2, 3)])
        res = breadth_first_search(g, 0)
        res.parents = res.parents.copy()
        res.parents[3] = 2
        with pytest.raises(BFSValidationError, match="unreached"):
            validate_bfs_result(g, res)

    def test_root_rules(self):
        g = path_graph(3)
        res = breadth_first_search(g, 0)
        res.parents = res.parents.copy()
        res.parents[0] = 1
        with pytest.raises(BFSValidationError, match="root"):
            validate_bfs_result(g, res)


class TestGraph500Harness:
    def test_run_and_score(self):
        res = run_graph500(scale=9, num_searches=4, seed=1)
        assert res.num_searches == 4
        assert len(res.teps["graphct"]) == 4
        assert len(res.edges_traversed) == 4
        # The shared-memory model posts higher TEPS (paper Table I).
        assert res.harmonic_mean_teps("graphct") > res.harmonic_mean_teps(
            "bsp"
        )

    def test_validates_every_search(self):
        # Would raise BFSValidationError if any search were invalid.
        run_graph500(scale=8, num_searches=2, seed=3)

    def test_num_searches_validated(self):
        with pytest.raises(ValueError):
            run_graph500(scale=8, num_searches=0)
