"""Tests for graph generators, including RMAT distribution properties."""

import numpy as np
import pytest

from repro.graph import (
    RMATParameters,
    erdos_renyi,
    path_graph,
    ring_graph,
    rmat,
    rmat_edges,
    star_graph,
    two_d_grid,
    watts_strogatz,
)
from repro.graph.properties import degree_statistics, is_symmetric


class TestRMATParameters:
    def test_sizes(self):
        p = RMATParameters(scale=10, edge_factor=16)
        assert p.num_vertices == 1024
        assert p.num_edge_pairs == 16384

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            RMATParameters(a=0.5, b=0.5, c=0.5, d=0.5)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RMATParameters(a=1.2, b=-0.2, c=0.0, d=0.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            RMATParameters(scale=-1)

    def test_zero_edge_factor_rejected(self):
        with pytest.raises(ValueError):
            RMATParameters(edge_factor=0)


class TestRMATEdges:
    def test_shape_and_range(self):
        p = RMATParameters(scale=8, edge_factor=4)
        e = rmat_edges(p, seed=7)
        assert e.shape == (p.num_edge_pairs, 2)
        assert e.min() >= 0 and e.max() < p.num_vertices

    def test_deterministic_for_seed(self):
        p = RMATParameters(scale=8, edge_factor=4)
        assert np.array_equal(rmat_edges(p, seed=5), rmat_edges(p, seed=5))
        assert not np.array_equal(rmat_edges(p, seed=5), rmat_edges(p, seed=6))

    def test_scale_zero_single_vertex(self):
        p = RMATParameters(scale=0, edge_factor=2)
        e = rmat_edges(p, seed=1)
        assert np.all(e == 0)

    def test_skew_towards_low_ids(self):
        # With a=0.57 the upper-left quadrant is favoured, so low vertex
        # ids must receive far more edge endpoints than high ids.
        p = RMATParameters(scale=10, edge_factor=16)
        e = rmat_edges(p, seed=3)
        endpoints = e.ravel()
        low = np.count_nonzero(endpoints < p.num_vertices // 2)
        high = endpoints.size - low
        assert low > 1.5 * high


class TestRMATGraph:
    def test_undirected_simple(self):
        g = rmat(scale=9, edge_factor=8, seed=2)
        assert not g.directed
        assert is_symmetric(g)
        src = g.arc_sources()
        assert not np.any(src == g.col_idx)  # no self loops

    def test_scale_free_degree_skew(self):
        g = rmat(scale=12, edge_factor=16, seed=1)
        stats = degree_statistics(g)
        # Scale-free: a few hubs dominate (paper: "several vertices have
        # many neighbors").
        assert stats.skew > 5
        assert stats.median_degree < stats.mean_degree

    def test_small_world_reachability(self):
        from repro.graph.properties import (
            giant_component_vertex,
            reachable_from,
        )

        g = rmat(scale=11, edge_factor=16, seed=1)
        visited = reachable_from(g, giant_component_vertex(g))
        # Giant component holds the bulk of non-isolated vertices.
        non_isolated = int(np.count_nonzero(g.degrees() > 0))
        assert visited.sum() > 0.7 * non_isolated

    def test_directed_variant(self):
        g = rmat(scale=8, edge_factor=4, seed=1, directed=True)
        assert g.directed


class TestErdosRenyi:
    def test_basic(self):
        g = erdos_renyi(100, 300, seed=1)
        assert g.num_vertices == 100
        assert 0 < g.num_edges <= 300

    def test_invalid_vertex_count(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 5)

    def test_deterministic(self):
        a = erdos_renyi(50, 100, seed=9)
        b = erdos_renyi(50, 100, seed=9)
        assert np.array_equal(a.col_idx, b.col_idx)


class TestWattsStrogatz:
    def test_no_rewire_is_lattice(self):
        g = watts_strogatz(20, 4, 0.0)
        assert np.all(g.degrees() == 4)

    def test_rewire_changes_structure(self):
        lattice = watts_strogatz(200, 4, 0.0, seed=1)
        rewired = watts_strogatz(200, 4, 0.5, seed=1)
        assert not np.array_equal(lattice.col_idx, rewired.col_idx)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError, match="even"):
            watts_strogatz(10, 3)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError, match="smaller"):
            watts_strogatz(4, 4)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            watts_strogatz(10, 2, 1.5)


class TestDeterministicTopologies:
    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_star_zero_leaves(self):
        assert star_graph(0).num_edges == 0

    def test_ring(self):
        g = ring_graph(6)
        assert np.all(g.degrees() == 2)
        assert g.num_edges == 6

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_single_vertex_path(self):
        assert path_graph(1).num_edges == 0

    def test_grid(self):
        g = two_d_grid(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            two_d_grid(0, 4)
