"""Metrics-registry and structured-logger suite.

Covers the instruments (counter/gauge/histogram, labelled families),
the Prometheus text exposition and JSON snapshot renderings, the
zero-cost null twins, thread-safety under concurrent writers, and the
JSON-lines logger.  The exposition validator here is deliberately
strict — it re-implements the format rules from the Prometheus
exposition spec (HELP/TYPE headers, sample-line grammar, cumulative
histogram buckets) so a rendering bug fails loudly rather than parsing
"well enough".
"""

import io
import json
import re
import threading

import pytest

from repro.telemetry.logs import NULL_LOGGER, NullLogger, StructuredLogger
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_FORMAT_VERSION,
    NULL_METRICS,
    MetricsRegistry,
    metrics_snapshot,
    render_prometheus,
)

# ---------------------------------------------------------------------------
# Exposition-format validator (shared with the service tests)
# ---------------------------------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>NaN|[+-]Inf|-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def assert_valid_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Validate Prometheus text exposition; return samples per family.

    Checks every line is a HELP/TYPE header or a well-formed sample,
    every sample belongs to a declared TYPE'd family (histogram samples
    via their ``_bucket``/``_sum``/``_count`` suffixes), histogram
    buckets are cumulative and end with a ``+Inf`` bound, and the body
    ends with a newline.  Returns ``{family: [(labels, value), ...]}``
    for further assertions.
    """
    if text == "":
        return {}
    assert text.endswith("\n"), "exposition must end with a newline"
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        assert line.strip() == line and line, f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        m = _SAMPLE_RE.match(line)
        assert m, f"malformed sample line: {line!r}"
        name = m.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name.removesuffix(suffix)
            if base != name and types.get(base) == "histogram":
                family = base
                break
        assert family in types, f"sample {name!r} precedes its TYPE header"
        labels = {}
        if m.group("labels"):
            for pair in re.split(r",(?=[a-zA-Z_])", m.group("labels")):
                assert _LABEL_RE.match(pair), f"bad label pair {pair!r}"
                key, _, value = pair.partition("=")
                labels[key] = value.strip('"')
        value = m.group("value")
        numeric = (
            float("inf") if value == "+Inf"
            else float("-inf") if value == "-Inf"
            else float("nan") if value == "NaN"
            else float(value)
        )
        samples.setdefault(family, []).append((labels, numeric))
    # Histogram invariants: cumulative buckets, +Inf bucket == _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        rows = samples.get(family, [])
        series: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        for labels, value in rows:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if "le" in labels:
                bound = (
                    float("inf") if labels["le"] == "+Inf"
                    else float(labels["le"])
                )
                series.setdefault(key, []).append((bound, value))
        for key, buckets in series.items():
            ordered = sorted(buckets)
            values = [v for _, v in ordered]
            assert values == sorted(values), (
                f"{family}{dict(key)} buckets not cumulative: {ordered}"
            )
            assert ordered[-1][0] == float("inf"), f"{family} missing +Inf"
    return samples


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="increase"):
            reg.counter("jobs_total").inc(-1)

    def test_set_total_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        c.set_total(10)
        c.set_total(7)  # never lowers
        assert c.value == 10
        c.set_total(12)
        assert c.value == 12

    def test_same_name_same_child(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_labelled_children_are_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("req_total", "h", {"route": "/a"})
        b = reg.counter("req_total", "h", {"route": "/b"})
        a.inc()
        assert a is not b
        assert b.value == 0 and a.value == 1


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(3)
        assert g.value == 3


class TestHistogram:
    def test_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert [b["count"] for b in snap["buckets"]] == [1, 3, 4]
        assert snap["inf_count"] == 5
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_boundary_value_lands_in_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(1.0)  # le is inclusive
        assert h.snapshot()["buckets"][0]["count"] == 1

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="increasing"):
            reg.histogram("lat", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="increasing"):
            reg.histogram("lat2", buckets=(1.0, 1.0))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistryContracts:
    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="counter"):
            reg.gauge("x")

    def test_label_set_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", "h", {"a": "1"})
        with pytest.raises(ValueError, match="labelled"):
            reg.counter("x", "h", {"b": "1"})

    def test_bucket_layout_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket layout"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_registration_order_preserved(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.gauge("a_gauge")
        assert [f.name for f in reg.families()] == ["b_total", "a_gauge"]

    def test_concurrent_writers_lose_nothing(self):
        reg = MetricsRegistry()
        threads = [
            threading.Thread(
                target=lambda: [
                    (
                        reg.counter("c_total", "h", {"t": str(i % 2)}).inc(),
                        reg.histogram("h_seconds").observe(0.01),
                        reg.gauge("g").inc(),
                    )
                    for i in range(500)
                ]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        total = sum(
            reg.counter("c_total", "h", {"t": t}).value for t in ("0", "1")
        )
        assert total == 8 * 500
        assert reg.histogram("h_seconds").snapshot()["count"] == 8 * 500
        assert reg.gauge("g").value == 8 * 500


# ---------------------------------------------------------------------------
# Renderings
# ---------------------------------------------------------------------------


class TestRenderPrometheus:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_http_requests_total", "HTTP requests handled.",
            {"route": "/jobs", "method": "POST", "code": "202"},
        ).inc(3)
        reg.gauge("repro_job_queue_depth", "Queued jobs.").set(2)
        h = reg.histogram(
            "repro_http_request_latency_seconds", "Latency.",
            {"route": "/jobs"}, buckets=(0.01, 0.1, 1.0),
        )
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_valid_exposition(self):
        samples = assert_valid_exposition(
            render_prometheus(self._populated())
        )
        assert samples["repro_http_requests_total"] == [
            ({"route": "/jobs", "method": "POST", "code": "202"}, 3.0)
        ]
        assert samples["repro_job_queue_depth"] == [({}, 2.0)]

    def test_histogram_expansion(self):
        text = render_prometheus(self._populated())
        assert (
            'repro_http_request_latency_seconds_bucket'
            '{route="/jobs",le="0.1"} 1' in text
        )
        assert (
            'repro_http_request_latency_seconds_bucket'
            '{route="/jobs",le="+Inf"} 2' in text
        )
        assert 'repro_http_request_latency_seconds_count{route="/jobs"} 2' \
            in text

    def test_help_and_type_headers(self):
        text = render_prometheus(self._populated())
        assert "# HELP repro_http_requests_total HTTP requests handled." \
            in text
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_job_queue_depth gauge" in text
        assert "# TYPE repro_http_request_latency_seconds histogram" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "h", {"p": 'a"b\\c\nd'}).inc()
        text = render_prometheus(reg)
        assert r'p="a\"b\\c\nd"' in text
        assert_valid_exposition(text)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert render_prometheus(NULL_METRICS) == ""

    def test_integer_values_render_without_decimal(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(5)
        assert "n_total 5\n" in render_prometheus(reg)


class TestMetricsSnapshot:
    def test_schema_and_content(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help text", {"k": "v"}).inc(2)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        snap = metrics_snapshot(reg)
        assert snap["format_version"] == METRICS_FORMAT_VERSION
        by_name = {f["name"]: f for f in snap["families"]}
        c = by_name["c_total"]
        assert c["kind"] == "counter" and c["help"] == "help text"
        assert c["samples"] == [{"labels": {"k": "v"}, "value": 2.0}]
        h = by_name["h_seconds"]["samples"][0]
        assert h["count"] == 1 and h["buckets"][0]["count"] == 1

    def test_json_serializable(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        json.dumps(metrics_snapshot(reg))


class TestNullMetrics:
    def test_all_instruments_are_noops(self):
        c = NULL_METRICS.counter("x")
        g = NULL_METRICS.gauge("y")
        h = NULL_METRICS.histogram("z")
        c.inc()
        c.set_total(10)
        g.set(5)
        g.inc()
        g.dec()
        h.observe(1.0)
        assert c.value == 0.0
        assert list(NULL_METRICS.families()) == []
        assert metrics_snapshot(NULL_METRICS)["families"] == []

    def test_shared_singleton_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.gauge("b")

    def test_enabled_discriminator(self):
        assert MetricsRegistry().enabled is True
        assert NULL_METRICS.enabled is False


# ---------------------------------------------------------------------------
# Structured logger
# ---------------------------------------------------------------------------


class TestStructuredLogger:
    def test_json_lines_carry_fields(self):
        buf = io.StringIO()
        log = StructuredLogger(buf, fmt="json", clock=lambda: 0.25)
        log.info(
            "http.request", trace_id="abc123", route="/jobs",
            latency_ms=1.25, job_id=None,
        )
        rec = json.loads(buf.getvalue())
        assert rec["ts"] == "1970-01-01T00:00:00.250Z"
        assert rec["level"] == "info"
        assert rec["event"] == "http.request"
        assert rec["trace_id"] == "abc123"
        assert rec["route"] == "/jobs"
        assert rec["latency_ms"] == 1.25
        assert "job_id" not in rec  # None fields are dropped

    def test_text_format_same_fields(self):
        buf = io.StringIO()
        log = StructuredLogger(buf, fmt="text", clock=lambda: 0.0)
        log.warning("serve.signal", signal=15)
        line = buf.getvalue()
        assert "WARNING" in line and "serve.signal" in line
        assert "signal=15" in line

    def test_level_threshold(self):
        buf = io.StringIO()
        log = StructuredLogger(buf, fmt="json", level="info")
        log.debug("dropped")
        assert buf.getvalue() == ""
        log.error("kept")
        assert json.loads(buf.getvalue())["event"] == "kept"

    def test_debug_level_passes_everything(self):
        buf = io.StringIO()
        log = StructuredLogger(buf, fmt="json", level="debug")
        log.debug("seen")
        assert json.loads(buf.getvalue())["event"] == "seen"

    def test_invalid_format_and_level_rejected(self):
        with pytest.raises(ValueError, match="format"):
            StructuredLogger(io.StringIO(), fmt="xml")
        with pytest.raises(ValueError, match="level"):
            StructuredLogger(io.StringIO(), level="loud")
        log = StructuredLogger(io.StringIO())
        with pytest.raises(ValueError, match="level"):
            log.log("loud", "event")

    def test_concurrent_writers_never_interleave(self):
        buf = io.StringIO()
        log = StructuredLogger(buf, fmt="json")
        threads = [
            threading.Thread(
                target=lambda i=i: [
                    log.info("event", thread=i, n=n) for n in range(200)
                ]
            )
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        lines = buf.getvalue().splitlines()
        assert len(lines) == 8 * 200
        for line in lines:
            json.loads(line)  # every line is one complete record

    def test_null_logger_is_silent(self):
        NULL_LOGGER.info("anything", field=1)
        NULL_LOGGER.log("error", "anything")
        assert isinstance(NULL_LOGGER, NullLogger)
        assert NULL_LOGGER.enabled is False
