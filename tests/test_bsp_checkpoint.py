"""Tests for BSP checkpointing and failure recovery.

The Pregel guarantee under test: a computation killed mid-run and
resumed from its last superstep-boundary checkpoint produces results
identical to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.bsp import (
    BSPEngine,
    Checkpoint,
    CheckpointStore,
    MinCombiner,
    SumAggregator,
    load_checkpoint,
    save_checkpoint,
)
from repro.bsp_algorithms import BSPConnectedComponents, BSPBreadthFirstSearch
from repro.graph import from_edge_list, path_graph, ring_graph, rmat


class CrashError(RuntimeError):
    pass


class CrashingCC(BSPConnectedComponents):
    """Connected components that dies when first reaching a superstep."""

    def __init__(self, crash_at: int):
        self.crash_at = crash_at
        self.armed = True

    def compute(self, ctx, messages):
        if self.armed and ctx.superstep == self.crash_at:
            raise CrashError(f"injected failure at superstep {ctx.superstep}")
        super().compute(ctx, messages)


@pytest.fixture(scope="module")
def crash_graph():
    return rmat(scale=7, edge_factor=8, seed=5)


def run_with_recovery(graph, crash_at, checkpoint_every):
    """Run CrashingCC to the injected failure, then resume to the end."""
    store = CheckpointStore()
    program = CrashingCC(crash_at)
    engine = BSPEngine(graph)
    with pytest.raises(CrashError):
        engine.run(
            program,
            checkpoint_every=checkpoint_every,
            checkpoint_store=store,
        )
    assert store.latest is not None, "failure before the first checkpoint"
    program.armed = False  # the retry does not hit the same fault
    return engine.run(program, resume_from=store.latest), store


class TestFailureRecovery:
    @pytest.mark.parametrize("crash_at,every", [(2, 1), (3, 2), (4, 3)])
    def test_recovered_run_matches_clean_run(
        self, crash_graph, crash_at, every
    ):
        clean = BSPEngine(crash_graph).run(BSPConnectedComponents())
        recovered, _ = run_with_recovery(crash_graph, crash_at, every)
        assert recovered.values == clean.values
        assert recovered.num_supersteps == clean.num_supersteps
        assert (
            recovered.messages_per_superstep == clean.messages_per_superstep
        )
        assert recovered.active_per_superstep == clean.active_per_superstep

    def test_trace_covers_only_replayed_supersteps(self, crash_graph):
        clean = BSPEngine(crash_graph).run(BSPConnectedComponents())
        recovered, store = run_with_recovery(crash_graph, 3, 2)
        resumed_at = store.latest.superstep
        assert len(recovered.trace) == clean.num_supersteps - resumed_at

    def test_crash_before_first_checkpoint_is_unrecoverable(self):
        g = ring_graph(8)
        store = CheckpointStore()
        with pytest.raises(CrashError):
            BSPEngine(g).run(
                CrashingCC(1), checkpoint_every=3, checkpoint_store=store
            )
        assert store.latest is None

    def test_recovery_with_combiner(self, crash_graph):
        clean = BSPEngine(crash_graph, combiner=MinCombiner()).run(
            BSPConnectedComponents()
        )
        store = CheckpointStore()
        program = CrashingCC(2)
        engine = BSPEngine(crash_graph, combiner=MinCombiner())
        with pytest.raises(CrashError):
            engine.run(program, checkpoint_every=1, checkpoint_store=store)
        program.armed = False
        recovered = engine.run(program, resume_from=store.latest)
        assert recovered.values == clean.values


class TestCheckpointMechanics:
    def test_checkpoint_cadence(self, crash_graph):
        store = CheckpointStore(retain=100)
        res = BSPEngine(crash_graph).run(
            BSPConnectedComponents(),
            checkpoint_every=2,
            checkpoint_store=store,
        )
        expected = (res.num_supersteps - 1) // 2
        assert len(store) == expected

    def test_store_retention(self):
        store = CheckpointStore(retain=2)
        for s in range(5):
            store.save(
                Checkpoint(
                    superstep=s, values=[0], halted=np.zeros(1, bool),
                    pending=[],
                )
            )
        assert len(store) == 2
        assert store.latest.superstep == 4

    def test_store_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore(retain=0)

    def test_checkpoint_validation(self):
        with pytest.raises(ValueError):
            Checkpoint(
                superstep=-1, values=[], halted=np.zeros(0, bool), pending=[]
            )
        with pytest.raises(ValueError, match="parallel"):
            Checkpoint(
                superstep=0, values=[1, 2], halted=np.zeros(1, bool),
                pending=[],
            )

    def test_checkpoint_every_requires_store(self):
        with pytest.raises(ValueError, match="checkpoint_store"):
            BSPEngine(ring_graph(4)).run(
                BSPConnectedComponents(), checkpoint_every=1
            )

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            BSPEngine(ring_graph(4)).run(
                BSPConnectedComponents(),
                checkpoint_every=0,
                checkpoint_store=CheckpointStore(),
            )

    def test_resume_graph_mismatch_rejected(self):
        ck = Checkpoint(
            superstep=1, values=[0, 0], halted=np.zeros(2, bool), pending=[]
        )
        with pytest.raises(ValueError, match="vertex count"):
            BSPEngine(ring_graph(5)).run(
                BSPConnectedComponents(), resume_from=ck
            )

    def test_aggregator_state_survives_recovery(self):
        """Aggregator visibility and history must be checkpointed."""
        from repro.bsp import VertexProgram

        class Counting(VertexProgram):
            def initial_value(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                if ctx.superstep < 3:
                    ctx.aggregate("steps", 1)
                    ctx.send_to_neighbors(0)
                else:
                    ctx.value = ctx.aggregated("steps")
                    ctx.vote_to_halt()

        g = ring_graph(6)
        aggs = {"steps": SumAggregator()}
        clean = BSPEngine(g, aggregators=aggs).run(Counting())

        store = CheckpointStore()
        engine = BSPEngine(g, aggregators=aggs)
        partial = engine.run(
            Counting(),
            max_supersteps=2,
            checkpoint_every=2,
            checkpoint_store=store,
        )
        assert partial.num_supersteps == 2
        resumed = BSPEngine(g, aggregators=aggs).run(
            Counting(), resume_from=store.latest
        )
        assert resumed.values == clean.values
        assert (
            resumed.aggregator_history["steps"]
            == clean.aggregator_history["steps"]
        )


class TestCombinedResumeAccounting:
    """With a combiner, ``pending`` holds only the folded messages — the
    raw send-side counters must travel in the checkpoint explicitly."""

    def test_checkpoint_carries_raw_buffer_counters(self, crash_graph):
        store = CheckpointStore(retain=100)
        clean = BSPEngine(crash_graph, combiner=MinCombiner()).run(
            BSPConnectedComponents(),
            checkpoint_every=1,
            checkpoint_store=store,
        )
        for ck in store._checkpoints:
            # The pending buffer is the previous superstep's outbox; its
            # raw total is exactly what that superstep recorded as sent.
            assert ck.buffer_total_sent == (
                clean.messages_per_superstep[ck.superstep - 1]
            )
            assert int(ck.buffer_enqueues.sum()) == ck.buffer_total_sent
            # Folding drops messages, so the raw count can only exceed
            # the materialized pending list.
            assert ck.buffer_total_sent >= len(ck.pending)
        # Superstep 0 floods every arc: multi-arc destinations folded,
        # so the divergence the counters preserve is strict there.
        first = min(store._checkpoints, key=lambda c: c.superstep)
        assert first.buffer_total_sent > len(first.pending)

    def test_combined_resume_matches_uninterrupted(self, crash_graph):
        clean = BSPEngine(crash_graph, combiner=MinCombiner()).run(
            BSPConnectedComponents()
        )
        store = CheckpointStore()
        program = CrashingCC(3)
        engine = BSPEngine(crash_graph, combiner=MinCombiner())
        with pytest.raises(CrashError):
            engine.run(program, checkpoint_every=2, checkpoint_store=store)
        program.armed = False
        resumed = BSPEngine(crash_graph, combiner=MinCombiner()).run(
            program, resume_from=store.latest
        )
        assert resumed.values == clean.values
        assert resumed.num_supersteps == clean.num_supersteps
        assert resumed.messages_per_superstep == clean.messages_per_superstep
        assert resumed.active_per_superstep == clean.active_per_superstep

    def test_checkpoints_after_combined_resume_match_clean(self, crash_graph):
        clean_store = CheckpointStore(retain=100)
        BSPEngine(crash_graph, combiner=MinCombiner()).run(
            BSPConnectedComponents(),
            checkpoint_every=2,
            checkpoint_store=clean_store,
        )
        store = CheckpointStore(retain=100)
        program = CrashingCC(3)
        engine = BSPEngine(crash_graph, combiner=MinCombiner())
        with pytest.raises(CrashError):
            engine.run(program, checkpoint_every=2, checkpoint_store=store)
        program.armed = False
        BSPEngine(crash_graph, combiner=MinCombiner()).run(
            program,
            resume_from=store.latest,
            checkpoint_every=2,
            checkpoint_store=store,
        )
        clean_by_step = {c.superstep: c for c in clean_store._checkpoints}
        resumed_later = [
            c for c in store._checkpoints if c.superstep > 2
        ]
        assert resumed_later, "resume wrote no further checkpoints"
        for ck in resumed_later:
            ref = clean_by_step[ck.superstep]
            assert ck.values == ref.values
            assert sorted(ck.pending) == sorted(ref.pending)
            assert ck.buffer_total_sent == ref.buffer_total_sent
            assert (
                ck.buffer_enqueues.tolist() == ref.buffer_enqueues.tolist()
            )

    def test_legacy_checkpoint_still_resumes(self, crash_graph):
        """Checkpoints without the counter fields (format v1) resume on a
        best-effort replay."""
        store = CheckpointStore()
        engine = BSPEngine(crash_graph)
        clean = engine.run(BSPConnectedComponents())
        engine.run(
            BSPConnectedComponents(),
            max_supersteps=3,
            checkpoint_every=2,
            checkpoint_store=store,
        )
        ck = store.latest
        assert ck is not None
        ck.buffer_total_sent = None
        ck.buffer_enqueues = None
        resumed = BSPEngine(crash_graph).run(
            BSPConnectedComponents(), resume_from=ck
        )
        assert resumed.values == clean.values


class TestDiskRoundTrip:
    def test_save_load(self, tmp_path, crash_graph):
        store = CheckpointStore()
        BSPEngine(crash_graph).run(
            BSPConnectedComponents(),
            checkpoint_every=1,
            checkpoint_store=store,
        )
        path = tmp_path / "ck.pkl"
        save_checkpoint(store.latest, path)
        loaded = load_checkpoint(path)
        assert loaded.superstep == store.latest.superstep
        assert loaded.values == store.latest.values
        assert loaded.pending == store.latest.pending

    def test_version_check(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"format_version": 99, "checkpoint": None}, fh)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_resume_from_disk(self, tmp_path, crash_graph):
        clean = BSPEngine(crash_graph).run(BSPConnectedComponents())
        store = CheckpointStore()
        program = CrashingCC(3)
        engine = BSPEngine(crash_graph)
        with pytest.raises(CrashError):
            engine.run(
                program, checkpoint_every=2, checkpoint_store=store
            )
        path = tmp_path / "ck.pkl"
        save_checkpoint(store.latest, path)
        program.armed = False
        recovered = BSPEngine(crash_graph).run(
            program, resume_from=load_checkpoint(path)
        )
        assert recovered.values == clean.values


class TestResumeOtherPrograms:
    def test_bfs_resume(self, crash_graph):
        src = int(np.argmax(crash_graph.degrees()))
        clean = BSPEngine(crash_graph).run(BSPBreadthFirstSearch(src))
        store = CheckpointStore()
        engine = BSPEngine(crash_graph)
        partial = engine.run(
            BSPBreadthFirstSearch(src),
            max_supersteps=2,
            checkpoint_every=1,
            checkpoint_store=store,
        )
        resumed = BSPEngine(crash_graph).run(
            BSPBreadthFirstSearch(src), resume_from=store.latest
        )
        assert resumed.values == clean.values
        assert resumed.num_supersteps == clean.num_supersteps
