"""Service-layer suite: jobs, cache, HTTP surface, graceful shutdown.

The HTTP tests run a real ``ThreadingHTTPServer`` on an ephemeral port
with a module-scoped warm service (scale-7 RMAT, 2 shard workers), so
they exercise the exact stack ``repro serve`` runs — handler threads,
job queue, warm-engine reuse, LRU cache, telemetry counters.
"""

import json
import re
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.bsp_algorithms import (
    bsp_breadth_first_search,
    bsp_connected_components,
    bsp_count_triangles,
    bsp_k_core,
    bsp_sssp,
)
from repro.graph import from_edge_list, rmat
from repro.service import (
    ALGORITHMS,
    GraphAnalyticsService,
    JobManager,
    ResultCache,
    build_server,
    canonicalize_params,
)
from repro.service.handlers import PROMETHEUS_CONTENT_TYPE
from repro.telemetry.metrics import NULL_METRICS
from tests.test_metrics import assert_valid_exposition

# ---------------------------------------------------------------------------
# HTTP helpers
# ---------------------------------------------------------------------------


class Client:
    """Minimal JSON-over-HTTP client returning (status_code, body)."""

    def __init__(self, base: str):
        self.base = base

    def get(self, path: str):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def post(self, path: str, payload=None, headers=None):
        data = json.dumps(payload or {}).encode()
        req = urllib.request.Request(
            self.base + path, data=data, method="POST",
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def get_raw(self, path: str, headers=None):
        """GET returning (status, response headers, body text)."""
        req = urllib.request.Request(
            self.base + path, headers=headers or {}
        )
        with urllib.request.urlopen(req, timeout=30) as r:
            return r.status, dict(r.headers), r.read().decode("utf-8")

    def post_raw(self, path: str, payload=None, headers=None):
        """POST returning (status, response headers, parsed JSON body)."""
        data = json.dumps(payload or {}).encode()
        req = urllib.request.Request(
            self.base + path, data=data, method="POST",
            headers=headers or {},
        )
        with urllib.request.urlopen(req, timeout=30) as r:
            return r.status, dict(r.headers), json.loads(r.read())

    def wait(self, job_id: str, timeout: float = 60.0):
        """Poll the status endpoint until the job is terminal."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            code, body = self.get(f"/jobs/{job_id}")
            assert code == 200, body
            if body["status"] in ("done", "failed"):
                return body
            time.sleep(0.01)
        raise TimeoutError(f"job {job_id} did not finish")


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=7, edge_factor=8, seed=3)


@pytest.fixture(scope="module")
def service(graph):
    svc = GraphAnalyticsService(
        graph, num_workers=2, job_threads=2, cache_capacity=16
    )
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def client(service):
    server = build_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield Client(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


# ---------------------------------------------------------------------------
# Unit tier: cache, params, jobs
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_lru_eviction_and_counters(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refreshes 'a'
        cache.put("c", {"v": 3})           # evicts 'b' (LRU tail)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        stats = cache.stats()
        assert stats["hits"] == 3 and stats["misses"] == 1
        assert stats["evictions"] == 1 and stats["size"] == 2

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", {"v": 1})
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_key_is_canonical_in_param_order(self):
        k1 = ResultCache.make_key("fp", "pagerank", {"a": 1, "b": 2})
        k2 = ResultCache.make_key("fp", "pagerank", {"b": 2, "a": 1})
        assert k1 == k2
        assert ResultCache.make_key("other", "pagerank", {"a": 1, "b": 2}) != k1


class TestCanonicalizeParams:
    def test_defaults_fill_to_one_cache_key(self, graph):
        implicit = canonicalize_params("pagerank", {}, graph)
        explicit = canonicalize_params(
            "pagerank", {"num_supersteps": 30, "damping": 0.85}, graph
        )
        assert implicit == explicit

    def test_unknown_algorithm(self, graph):
        with pytest.raises(ValueError, match="unknown algorithm"):
            canonicalize_params("nope", {}, graph)

    def test_unknown_parameter(self, graph):
        with pytest.raises(ValueError, match="unknown parameter"):
            canonicalize_params("cc", {"source": 0}, graph)

    def test_missing_required(self, graph):
        with pytest.raises(ValueError, match="source"):
            canonicalize_params("bfs", {}, graph)

    def test_source_out_of_range(self, graph):
        with pytest.raises(ValueError, match="out of range"):
            canonicalize_params(
                "bfs", {"source": graph.num_vertices}, graph
            )

    def test_bad_types_rejected(self, graph):
        with pytest.raises(ValueError, match="integer"):
            canonicalize_params("kcore", {"k": "two"}, graph)
        with pytest.raises(ValueError, match="damping"):
            canonicalize_params("pagerank", {"damping": 1.5}, graph)


class TestJobManager:
    def test_failure_marks_failed_with_error(self):
        def explode(job):
            raise RuntimeError("kaboom")

        mgr = JobManager(explode, num_threads=1)
        try:
            job = mgr.submit("cc", {})
            done = mgr.wait(job.job_id)
            assert done.status == "failed"
            assert "kaboom" in done.error
        finally:
            mgr.shutdown()

    def test_drain_finishes_in_flight_job(self):
        release = threading.Event()
        started = threading.Event()

        def slow(job):
            started.set()
            assert release.wait(timeout=30)
            return {"ok": True}, False

        mgr = JobManager(slow, num_threads=1)
        job = mgr.submit("cc", {})
        queued = mgr.submit("cc", {})  # still in the queue at shutdown
        assert started.wait(timeout=30)
        shutter = threading.Thread(target=mgr.shutdown)
        shutter.start()
        with pytest.raises(RuntimeError, match="shut down"):
            # Drain is underway: no new work accepted...
            time.sleep(0.05)
            mgr.submit("cc", {})
        release.set()
        shutter.join(timeout=30)
        # ...but both the in-flight and the queued job completed.
        assert mgr.get(job.job_id).status == "done"
        assert mgr.get(queued.job_id).status == "done"

    def test_submit_order_preserved(self):
        mgr = JobManager(lambda job: ({}, False), num_threads=1)
        try:
            ids = [mgr.submit("cc", {}).job_id for _ in range(5)]
            assert [j.job_id for j in mgr.list_jobs()] == ids
        finally:
            mgr.shutdown()


# ---------------------------------------------------------------------------
# HTTP tier against the warm service
# ---------------------------------------------------------------------------


class TestServiceHTTP:
    def test_health_and_graph(self, client, graph):
        code, body = client.get("/health")
        assert code == 200 and body["status"] == "ok"
        assert body["graph"]["num_vertices"] == graph.num_vertices
        assert body["algorithms"] == list(ALGORITHMS)
        code, info = client.get("/graph")
        assert code == 200
        assert info["fingerprint"] == graph.fingerprint()

    def test_submit_poll_fetch_matches_library(self, client, graph):
        code, sub = client.post(
            "/jobs", {"algorithm": "cc", "params": {}}
        )
        assert code == 202 and sub["status"] == "submitted"
        done = client.wait(sub["job_id"])
        assert done["started_at"] is not None
        assert done["finished_at"] is not None
        code, res = client.get(f"/jobs/{sub['job_id']}/result")
        assert code == 200
        lib = bsp_connected_components(graph)
        assert res["result"]["values"] == lib.labels.tolist()
        assert res["result"]["num_components"] == lib.num_components
        assert res["result"]["num_supersteps"] == lib.num_supersteps

    def test_every_algorithm_serves_bit_identical_values(
        self, client, graph, service
    ):
        lib = {
            "sssp": bsp_sssp(graph, 5).distances.tolist(),
            "kcore": np.asarray(
                bsp_k_core(graph, 2).in_core, dtype=bool
            ).tolist(),
            "triangles": bsp_count_triangles(
                graph, num_workers=service.num_workers
            ).per_vertex.tolist(),
        }
        params = {"sssp": {"source": 5}, "kcore": {"k": 2}, "triangles": {}}
        jobs = {}
        for algo in lib:
            code, sub = client.post(
                "/jobs", {"algorithm": algo, "params": params[algo]}
            )
            assert code == 202
            jobs[algo] = sub["job_id"]
        for algo, jid in jobs.items():
            assert client.wait(jid)["status"] == "done"
            _, res = client.get(f"/jobs/{jid}/result")
            served = res["result"]["values"]
            # sssp serializes +inf (unreachable) as null.
            expect = [
                None if isinstance(v, float) and not np.isfinite(v) else v
                for v in lib[algo]
            ]
            assert served == expect, f"{algo} diverged from the library call"

    def test_concurrent_submits_from_eight_threads(self, client, graph):
        sources = list(range(8))
        outcomes: dict[int, dict] = {}
        errors: list[Exception] = []

        def one_client(source: int) -> None:
            try:
                code, sub = client.post(
                    "/jobs",
                    {"algorithm": "bfs", "params": {"source": source}},
                )
                assert code == 202, sub
                done = client.wait(sub["job_id"])
                assert done["status"] == "done", done
                _, res = client.get(f"/jobs/{sub['job_id']}/result")
                outcomes[source] = res["result"]
            except Exception as exc:  # surfaced below, with context
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(s,)) for s in sources
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert sorted(outcomes) == sources
        for source, result in outcomes.items():
            lib = bsp_breadth_first_search(graph, source)
            assert result["values"] == lib.distances.tolist(), (
                f"bfs from {source} diverged under concurrency"
            )

    def test_cache_hit_skips_recompute(self, client, service):
        tel = service.telemetry

        def counter_total(name):
            return sum(
                int(c.value) for c in tel.counters if c.name == name
            )

        def job_spans():
            return len(tel.spans_named("job"))

        params = {"algorithm": "kcore", "params": {"k": 3}}
        _, first = client.post("/jobs", params)
        assert client.wait(first["job_id"])["status"] == "done"
        misses0 = counter_total("service_cache_miss")
        hits0 = counter_total("service_cache_hit")
        spans0 = job_spans()

        _, second = client.post("/jobs", params)
        done = client.wait(second["job_id"])
        assert done["cached"] is True
        _, res = client.get(f"/jobs/{second['job_id']}/result")
        assert res["cached"] is True
        # Telemetry proves no recompute: one hit counter, no new job span.
        assert counter_total("service_cache_hit") == hits0 + 1
        assert counter_total("service_cache_miss") == misses0
        assert job_spans() == spans0

        _, first_res = client.get(f"/jobs/{first['job_id']}/result")
        assert res["result"] == first_res["result"]

    def test_cache_key_covers_default_params(self, client, service):
        hits_before = service.cache.stats()["hits"]
        explicit = {
            "algorithm": "pagerank",
            "params": {"num_supersteps": 30, "damping": 0.85},
        }
        implicit = {"algorithm": "pagerank", "params": {}}
        _, a = client.post("/jobs", explicit)
        assert client.wait(a["job_id"])["status"] == "done"
        _, b = client.post("/jobs", implicit)
        assert client.wait(b["job_id"])["cached"] is True
        assert service.cache.stats()["hits"] == hits_before + 1

    def test_submit_validation_errors_are_400(self, client):
        for payload in (
            {"algorithm": "nope"},
            {"algorithm": "bfs", "params": {}},
            {"algorithm": "bfs", "params": {"source": -1}},
            {"algorithm": "cc", "params": {"k": 1}},
            {"params": {}},
        ):
            code, body = client.post("/jobs", payload)
            assert code == 400, payload
            assert "error" in body

    def test_malformed_json_is_400(self, client):
        req = urllib.request.Request(
            client.base + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_unknown_routes_and_jobs_are_404(self, client):
        assert client.get("/nope")[0] == 404
        assert client.get("/jobs/job-999999")[0] == 404
        assert client.get("/jobs/job-999999/result")[0] == 404

    def test_result_before_done_is_409(self, service, client):
        release = threading.Event()
        # Hold the engine lock so the next engine-backed job stays queued
        # behind it, then poll its result while it cannot have finished.
        with service.engine._lifecycle_lock:
            code, sub = client.post(
                "/jobs", {"algorithm": "bfs", "params": {"source": 9}}
            )
            assert code == 202
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                code, body = client.get(f"/jobs/{sub['job_id']}/result")
                if code == 409:
                    assert body["status"] in ("submitted", "running")
                    break
                time.sleep(0.005)
            else:  # pragma: no cover - diagnostic
                pytest.fail("job finished before the 409 window was seen")
        release.set()
        assert client.wait(sub["job_id"])["status"] == "done"

    def test_telemetry_and_trace_endpoints(self, client):
        code, report = client.get("/telemetry")
        assert code == 200
        assert report["service"]["cache"]["hits"] >= 1
        assert report["service"]["jobs"]["done"] >= 1
        assert any(
            c["name"] == "service_cache_hit" for c in report["counters"]
        )
        code, trace = client.get("/trace")
        assert code == 200
        assert trace["traceEvents"]

    def test_jobs_listing(self, client):
        code, body = client.get("/jobs")
        assert code == 200
        assert len(body["jobs"]) >= 1
        assert all("job_id" in j for j in body["jobs"])


# ---------------------------------------------------------------------------
# Observability: /metrics, trace correlation, health, timing
# ---------------------------------------------------------------------------

#: Metric families the service must expose once at least one job and one
#: request have been observed (engine families appear after the first
#: engine-backed run).
_CORE_FAMILIES = {
    "repro_http_requests_total",
    "repro_http_request_latency_seconds",
    "repro_jobs_submitted_total",
    "repro_jobs_completed_total",
    "repro_jobs_by_state",
    "repro_job_queue_depth",
    "repro_job_queue_wait_seconds",
    "repro_job_duration_seconds",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_evictions_total",
    "repro_cache_entries",
    "repro_cache_capacity",
    "repro_service_up",
    "repro_service_uptime_seconds",
    "repro_engine_workers_alive",
    "repro_engine_runs_total",
    "repro_engine_supersteps_total",
}


class TestObservability:
    """The PR's acceptance surface: exposition, tracing, health, timing.

    Runs against the same module-scoped warm service as
    :class:`TestServiceHTTP`, after it — so jobs and requests have
    already flowed and every metric family has data.
    """

    def _run_job(self, client, source: int) -> dict:
        code, sub = client.post(
            "/jobs", {"algorithm": "bfs", "params": {"source": source}}
        )
        assert code == 202, sub
        done = client.wait(sub["job_id"])
        assert done["status"] == "done", done
        return done

    def test_metrics_exposition_is_valid_and_complete(self, client):
        self._run_job(client, 20)  # ensure an engine-backed run happened
        status, headers, text = client.get_raw("/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        samples = assert_valid_exposition(text)
        missing = _CORE_FAMILIES - samples.keys()
        assert not missing, f"families absent from /metrics: {sorted(missing)}"
        # Spot-check semantics, not just presence.
        up = samples["repro_service_up"]
        assert up == [({}, 1.0)]
        request_total = sum(v for _, v in samples["repro_http_requests_total"])
        assert request_total >= 1
        assert any(
            labels.get("route") == "/jobs" and labels.get("method") == "POST"
            for labels, _ in samples["repro_http_requests_total"]
        )
        workers = samples["repro_engine_workers_alive"][0][1]
        assert workers == 2.0

    def test_metrics_json_snapshot(self, client):
        code, snap = client.get("/metrics.json")
        assert code == 200
        assert snap["format_version"] == 1
        names = {f["name"] for f in snap["families"]}
        assert _CORE_FAMILIES <= names
        by_name = {f["name"]: f for f in snap["families"]}
        assert by_name["repro_http_requests_total"]["kind"] == "counter"
        assert by_name["repro_job_queue_depth"]["kind"] == "gauge"
        latency = by_name["repro_http_request_latency_seconds"]
        assert latency["kind"] == "histogram"
        assert latency["samples"][0]["count"] >= 1

    def test_trace_id_round_trip(self, client, service):
        """One client-chosen id correlates the submit response, the
        response header, the job record, and the job's trace export."""
        chosen = "cafe0123deadbeef"
        status, headers, sub = client.post_raw(
            "/jobs",
            {"algorithm": "bfs", "params": {"source": 21}},
            headers={"X-Trace-Id": chosen},
        )
        assert status == 202
        assert sub["trace_id"] == chosen
        assert headers["X-Trace-Id"] == chosen
        done = client.wait(sub["job_id"])
        assert done["trace_id"] == chosen
        code, trace = client.get(f"/jobs/{sub['job_id']}/trace")
        assert code == 200
        assert trace["otherData"]["trace_id"] == chosen
        assert trace["otherData"]["job_id"] == sub["job_id"]
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert spans, "non-cached job exported no spans"

    def test_trace_id_generated_when_absent(self, client):
        status, headers, sub = client.post_raw(
            "/jobs", {"algorithm": "cc", "params": {}}
        )
        assert status == 202
        assert re.fullmatch(r"[0-9a-f]{16}", sub["trace_id"])
        assert headers["X-Trace-Id"] == sub["trace_id"]

    def test_cached_job_trace_is_empty_but_valid(self, client):
        params = {"algorithm": "bfs", "params": {"source": 22}}
        _, first = client.post("/jobs", params)
        assert client.wait(first["job_id"])["status"] == "done"
        _, second = client.post("/jobs", params)
        done = client.wait(second["job_id"])
        assert done["cached"] is True
        code, trace = client.get(f"/jobs/{second['job_id']}/trace")
        assert code == 200
        # Only Chrome metadata events ("M") — nothing executed.
        assert [e for e in trace["traceEvents"] if e.get("ph") != "M"] == []
        assert trace["otherData"]["job_id"] == second["job_id"]

    def test_health_reports_liveness_fields(self, client):
        code, body = client.get("/health")
        assert code == 200
        assert body["workers_alive"] == 2
        assert isinstance(body["queue_depth"], int)
        assert body["queue_depth"] >= 0
        assert body["uptime_seconds"] > 0

    def test_job_timing_fields(self, client):
        done = self._run_job(client, 23)
        assert done["queue_wait_seconds"] >= 0
        assert done["run_seconds"] >= 0
        assert done["finished_at"] >= done["started_at"]

    def test_trace_id_in_every_response(self, client):
        for path in ("/health", "/graph", "/jobs", "/metrics.json"):
            _, headers, _ = client.get_raw(path)
            assert re.fullmatch(r"[0-9a-f]{16}", headers["X-Trace-Id"]), path

    def test_concurrent_scrapes_while_jobs_run(self, client):
        """Hammer the read endpoints from threads during job traffic:
        no errors, every scrape parses, request counters stay monotone."""
        stop = threading.Event()
        errors: list[Exception] = []
        totals_per_scraper: dict[int, list[float]] = {}

        def scraper(idx: int) -> None:
            totals = totals_per_scraper.setdefault(idx, [])
            try:
                while not stop.is_set():
                    _, _, text = client.get_raw("/metrics")
                    samples = assert_valid_exposition(text)
                    totals.append(
                        sum(
                            v
                            for _, v in samples.get(
                                "repro_http_requests_total", []
                            )
                        )
                    )
                    code, _ = client.get("/telemetry")
                    assert code == 200
            except Exception as exc:  # surfaced below
                errors.append(exc)

        def submitter(offset: int) -> None:
            try:
                for source in range(offset, offset + 3):
                    self._run_job(client, 30 + source)
            except Exception as exc:
                errors.append(exc)

        scrapers = [
            threading.Thread(target=scraper, args=(i,)) for i in range(3)
        ]
        submitters = [
            threading.Thread(target=submitter, args=(off,))
            for off in (0, 3)
        ]
        for t in scrapers + submitters:
            t.start()
        for t in submitters:
            t.join(timeout=120)
        stop.set()
        for t in scrapers:
            t.join(timeout=30)
        assert not errors, errors
        for idx, totals in totals_per_scraper.items():
            assert totals, f"scraper {idx} never completed a scrape"
            assert totals == sorted(totals), (
                f"request counter went backwards in scraper {idx}"
            )

    def test_no_metrics_service_exposes_empty_registry(self):
        """``--no-metrics`` wiring: the null registry renders empty and
        instrumented paths still work."""
        graph = rmat(scale=5, edge_factor=8, seed=7)
        with GraphAnalyticsService(
            graph, num_workers=1, job_threads=1, cache_capacity=4,
            metrics=NULL_METRICS,
        ) as svc:
            job = svc.submit("cc", {})
            assert svc.jobs.wait(job.job_id).status == "done"
            assert svc.metrics_text() == ""
            assert svc.metrics_json()["families"] == []


class TestFailedJobPropagation:
    def test_runtime_failure_surfaces_error(self):
        """cc on a directed graph passes submit validation but fails in
        the runner; the error must reach the client, not vanish."""
        directed = from_edge_list(
            [(0, 1), (1, 2), (2, 0)], directed=True
        )
        with GraphAnalyticsService(
            directed, num_workers=1, job_threads=1, cache_capacity=4
        ) as svc:
            job = svc.submit("cc", {})
            done = svc.jobs.wait(job.job_id)
            assert done.status == "failed"
            assert "undirected" in done.error

    def test_failed_result_is_500_over_http(self):
        directed = from_edge_list([(0, 1), (1, 2)], directed=True)
        svc = GraphAnalyticsService(
            directed, num_workers=1, job_threads=1, cache_capacity=4
        )
        server = build_server(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = Client(f"http://{host}:{port}")
        try:
            code, sub = client.post(
                "/jobs", {"algorithm": "kcore", "params": {"k": 1}}
            )
            assert code == 202
            assert client.wait(sub["job_id"])["status"] == "failed"
            code, body = client.get(f"/jobs/{sub['job_id']}/result")
            assert code == 500
            assert "undirected" in body["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            svc.close()


class TestGracefulShutdown:
    def test_close_drains_in_flight_job_and_engine(self):
        graph = rmat(scale=6, edge_factor=8, seed=5)
        svc = GraphAnalyticsService(
            graph, num_workers=2, job_threads=1, cache_capacity=4
        )
        jobs = [
            svc.submit("pagerank", {"num_supersteps": 20}),
            svc.submit("bfs", {"source": 2}),
        ]
        svc.close()  # drain: both jobs must have completed
        for job in jobs:
            assert svc.jobs.get(job.job_id).status == "done"
        assert svc.engine.closed
        # No orphaned worker processes.
        assert all(not p.is_alive() for p in svc.engine._procs)
        with pytest.raises(RuntimeError):
            svc.submit("cc", {})

    def test_http_shutdown_endpoint_stops_serve_loop(self):
        graph = rmat(scale=6, edge_factor=8, seed=5)
        svc = GraphAnalyticsService(
            graph, num_workers=1, job_threads=1, cache_capacity=4
        )
        server = build_server(svc, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = Client(f"http://{host}:{port}")
        code, sub = client.post(
            "/jobs", {"algorithm": "cc", "params": {}}
        )
        assert code == 202
        code, body = client.post("/shutdown")
        assert code == 202 and body["status"] == "shutting-down"
        thread.join(timeout=30)
        assert not thread.is_alive(), "serve loop did not stop"
        server.server_close()
        svc.close()  # the CLI epilogue: drain after the socket closes
        assert svc.jobs.get(sub["job_id"]).status == "done"
        assert svc.engine.closed

    def test_close_is_idempotent(self):
        graph = rmat(scale=5, edge_factor=8, seed=5)
        svc = GraphAnalyticsService(graph, num_workers=1, job_threads=1)
        svc.close()
        svc.close()
        assert svc.engine.closed


class TestFlightRecorderEndpoints:
    """PR 10 surface: ``/debug/workers``, ``/debug/postmortem``, the
    per-worker metric families, and failed-job forensics fields."""

    def test_debug_workers_endpoint(self, client):
        code, body = client.get("/debug/workers")
        assert code == 200, body
        assert body["flight_recorder"] is True  # default-on
        assert body["stall_detected"] is False
        assert body["partition_policy"]
        rows = body["workers"]
        assert [row["worker"] for row in rows] == [0, 1]
        for row in rows:
            assert row["alive"] is True
            assert row["pid"]
            assert row["phase"] in ("idle", "run", "scatter", "gather")
            assert 0.0 <= row["progress_ratio"] <= 1.0

    def test_debug_postmortem_listing_and_404(self, client):
        code, body = client.get("/debug/postmortem")
        assert code == 200
        assert isinstance(body["postmortems"], list)
        code, body = client.get("/debug/postmortem/pm-no-such-bundle")
        assert code == 404
        # Malformed ids (traversal attempts) are refused, not resolved.
        code, body = client.get("/debug/postmortem/pm-..-escape")
        assert code == 404

    def test_worker_metric_families_in_exposition(self, client):
        code, sub = client.post(
            "/jobs", {"algorithm": "cc", "params": {}}
        )
        assert code == 202
        assert client.wait(sub["job_id"])["status"] == "done"
        _, _, text = client.get_raw("/metrics")
        samples = assert_valid_exposition(text)
        for family in (
            "repro_worker_phase",
            "repro_worker_progress_ratio",
            "repro_superstep_skew_seconds",
        ):
            assert family in samples, f"{family} absent from /metrics"
        # Phase gauges are one-hot per worker.
        by_worker = {}
        for labels, value in samples["repro_worker_phase"]:
            by_worker.setdefault(labels["worker"], 0.0)
            by_worker[labels["worker"]] += value
        assert by_worker == {"0": 1.0, "1": 1.0}
        ratios = dict(
            (labels["worker"], value)
            for labels, value in samples["repro_worker_progress_ratio"]
        )
        assert set(ratios) == {"0", "1"}
        skew_count = [
            value
            for labels, value in samples["repro_superstep_skew_seconds"]
            if labels.get("le") == "+Inf"
        ]
        assert skew_count and skew_count[0] >= 1.0

    def test_failed_job_carries_traceback_and_reason(self):
        directed = from_edge_list([(0, 1), (1, 2)], directed=True)
        with GraphAnalyticsService(
            directed, num_workers=1, job_threads=1, cache_capacity=4
        ) as svc:
            job = svc.submit("cc", {})
            done = svc.jobs.wait(job.job_id)
            assert done.status == "failed"
            # Verbatim job-thread traceback, bounded reason label, and
            # (no engine crash here) no postmortem pointer.
            assert done.traceback and "Traceback" in done.traceback
            assert "undirected" in done.traceback
            assert done.failure_reason == "invalid_params"
            assert done.postmortem_id is None
            view = done.to_dict()
            assert view["failure_reason"] == "invalid_params"
            assert "undirected" in view["traceback"]
            text = svc.metrics_text()
            assert (
                'repro_jobs_failed_total{reason="invalid_params"} 1'
                in text
            )
