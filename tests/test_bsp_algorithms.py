"""Tests for the BSP algorithm library: correctness against GraphCT
kernels and engine-vs-vectorized equivalence (the property DESIGN.md
promises)."""

import numpy as np
import pytest

from repro.bsp import BSPEngine, SumAggregator
from repro.bsp_algorithms import (
    BSPBreadthFirstSearch,
    BSPConnectedComponents,
    BSPPageRank,
    BSPShortestPaths,
    BSPTriangleCounting,
    bsp_breadth_first_search,
    bsp_connected_components,
    bsp_count_triangles,
    bsp_pagerank,
    bsp_sssp,
)
from repro.graph import from_edge_list, path_graph, ring_graph, rmat, star_graph
from repro.graph.properties import peripheral_vertex
from repro.graphct import (
    breadth_first_search,
    connected_components,
    count_triangles,
    pagerank,
    sssp,
)


@pytest.fixture(scope="module")
def tiny_rmat():
    """Small enough for the per-vertex reference engine."""
    return rmat(scale=7, edge_factor=8, seed=2)


class TestBSPConnectedComponents:
    def test_matches_shared_memory(self, small_rmat):
        bsp = bsp_connected_components(small_rmat)
        shm = connected_components(small_rmat)
        assert bsp.num_components == shm.num_components
        assert np.array_equal(bsp.labels, shm.labels)

    def test_engine_equivalence(self, tiny_rmat):
        eng = BSPEngine(tiny_rmat).run(BSPConnectedComponents())
        vec = bsp_connected_components(tiny_rmat)
        assert np.array_equal(eng.values_array(dtype=np.int64), vec.labels)
        assert eng.num_supersteps == vec.num_supersteps
        assert eng.messages_per_superstep == vec.messages_per_superstep
        assert eng.active_per_superstep[1:] == vec.active_per_superstep[1:]

    def test_superstep_blowup_vs_shared_memory(self, small_rmat):
        """Paper §VI: stale reads make BSP take >= ~2x the iterations."""
        bsp = bsp_connected_components(small_rmat)
        shm = connected_components(small_rmat)
        assert bsp.num_supersteps >= 1.5 * shm.num_iterations

    def test_ring_needs_diameter_supersteps(self):
        n = 32
        res = bsp_connected_components(ring_graph(n))
        # Label 0 travels one hop per superstep from both directions.
        assert res.num_supersteps >= n // 2

    def test_first_superstep_floods_every_edge(self, small_rmat):
        res = bsp_connected_components(small_rmat)
        assert res.messages_per_superstep[0] == small_rmat.num_arcs
        assert res.active_per_superstep[0] == small_rmat.num_vertices

    def test_activity_collapses(self, small_rmat):
        """Fig. 1 left: early supersteps touch everything, the tail is
        tiny."""
        res = bsp_connected_components(small_rmat)
        msgs = res.messages_per_superstep
        assert msgs[-1] == 0
        assert msgs[0] > 100 * max(msgs[-2], 1)

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(ValueError):
            bsp_connected_components(g)

    def test_isolated_vertices_self_labelled(self):
        g = from_edge_list([(0, 1)], num_vertices=4)
        res = bsp_connected_components(g)
        assert res.labels.tolist() == [0, 0, 2, 3]


class TestBSPBreadthFirstSearch:
    def test_matches_shared_memory(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        bsp = bsp_breadth_first_search(small_rmat, src)
        shm = breadth_first_search(small_rmat, src)
        assert np.array_equal(bsp.distances, shm.distances)

    def test_engine_equivalence(self, tiny_rmat):
        src = peripheral_vertex(tiny_rmat)
        eng = BSPEngine(tiny_rmat).run(BSPBreadthFirstSearch(src))
        vec = bsp_breadth_first_search(tiny_rmat, src)
        eng_dist = np.asarray(
            [-1 if v is None else v for v in eng.values], dtype=np.int64
        )
        assert np.array_equal(eng_dist, vec.distances)
        assert eng.num_supersteps == vec.num_supersteps
        assert eng.messages_per_superstep == vec.messages_per_superstep

    def test_messages_exceed_frontier_after_apex(self, small_rmat):
        """Fig. 2: messages ~ frontier early, then an order of magnitude
        larger as the graph saturates."""
        src = peripheral_vertex(small_rmat)
        res = bsp_breadth_first_search(small_rmat, src)
        msgs = res.messages_per_superstep
        frontier = res.frontier_sizes
        apex = int(np.argmax(frontier))
        post = apex + 1
        if post < len(frontier) and frontier[post] > 0:
            assert msgs[post] > 2 * frontier[post]

    def test_messages_are_frontier_incident_edges(self, small_rmat):
        """One message per edge incident on the (improved) frontier."""
        src = peripheral_vertex(small_rmat)
        res = bsp_breadth_first_search(small_rmat, src)
        shm = breadth_first_search(small_rmat, src)
        # BSP superstep s sends along edges of vertices discovered at
        # hop s; the shared-memory kernel examined exactly those arcs.
        for level, arcs in enumerate(shm.edges_examined):
            assert res.messages_per_superstep[level] == arcs

    def test_path_supersteps(self):
        res = bsp_breadth_first_search(path_graph(6), 0)
        assert res.distances.tolist() == [0, 1, 2, 3, 4, 5]
        assert res.num_supersteps == 7  # 5 hops + initial + drain

    def test_unreachable(self):
        g = from_edge_list([(0, 1), (2, 3)])
        res = bsp_breadth_first_search(g, 0)
        assert res.distances.tolist() == [0, 1, -1, -1]

    def test_source_validation(self):
        with pytest.raises(IndexError):
            bsp_breadth_first_search(ring_graph(4), -1)


class TestBSPTriangles:
    def test_matches_shared_memory_count(self, small_rmat):
        bsp = bsp_count_triangles(small_rmat)
        shm = count_triangles(small_rmat)
        assert bsp.total_triangles == shm.total_triangles
        assert bsp.possible_triangles == shm.wedges_checked

    def test_engine_equivalence(self, tiny_rmat):
        eng = BSPEngine(tiny_rmat).run(BSPTriangleCounting())
        vec = bsp_count_triangles(tiny_rmat)
        assert sum(eng.values) == vec.total_triangles
        assert eng.messages_per_superstep == vec.messages_per_superstep
        assert np.array_equal(
            eng.values_array(dtype=np.int64), vec.per_vertex
        )

    def test_three_working_supersteps(self, two_triangles):
        res = bsp_count_triangles(two_triangles)
        assert res.total_triangles == 2
        assert len(res.messages_per_superstep) == 4  # 3 phases + drain
        # superstep 0 sends one message per undirected edge
        assert res.messages_per_superstep[0] == two_triangles.num_edges

    def test_message_blowup(self, small_rmat):
        """§V: wedge messages dwarf both edges and actual triangles."""
        res = bsp_count_triangles(small_rmat)
        assert res.possible_triangles > res.total_triangles
        assert res.messages_per_superstep[1] == res.possible_triangles

    def test_write_ratio_against_shared_memory(self, small_rmat):
        """The BSP variant writes far more than shared memory (paper:
        181x at scale 24; the ratio shrinks with RMAT scale because
        miniatures are relatively triangle-dense — see EXPERIMENTS.md)."""
        bsp = bsp_count_triangles(small_rmat)
        shm = count_triangles(small_rmat)
        assert bsp.trace.total_writes > 5 * shm.trace.total_writes

    def test_per_vertex_attribution_is_min_corner(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
        res = bsp_count_triangles(g)
        # Triangles: (0,1,2) attributed to 0; (1,2,3) attributed to 1.
        assert res.per_vertex.tolist() == [1, 1, 0, 0]

    def test_triangle_free(self):
        res = bsp_count_triangles(star_graph(8))
        assert res.total_triangles == 0
        assert res.num_supersteps == 3  # no notifications -> no drain

    def test_directed_rejected(self):
        with pytest.raises(ValueError):
            bsp_count_triangles(from_edge_list([(0, 1)], directed=True))


class TestBSPSSSP:
    def test_matches_shared_memory(self, small_rmat):
        src = peripheral_vertex(small_rmat)
        bsp = bsp_sssp(small_rmat, src)
        shm = sssp(small_rmat, src)
        assert np.allclose(bsp.distances, shm.distances, equal_nan=False)

    def test_weighted(self):
        g = from_edge_list(
            [(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 10.0]
        )
        res = bsp_sssp(g, 0)
        assert res.distances.tolist() == [0.0, 1.0, 2.0]

    def test_engine_equivalence(self):
        g = from_edge_list(
            [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)],
            weights=[1.0, 2.0, 5.0, 1.0, 9.0],
        )
        eng = BSPEngine(g).run(BSPShortestPaths(0))
        vec = bsp_sssp(g, 0)
        assert np.allclose(np.asarray(eng.values, dtype=float), vec.distances)

    def test_negative_weights_rejected(self):
        g = from_edge_list([(0, 1)], weights=[-2.0])
        with pytest.raises(ValueError):
            bsp_sssp(g, 0)

    def test_unreachable_is_inf(self):
        g = from_edge_list([(0, 1), (2, 3)])
        res = bsp_sssp(g, 0)
        assert np.isinf(res.distances[2])


class TestBSPPageRank:
    def test_matches_shared_memory(self, small_rmat):
        bsp = bsp_pagerank(small_rmat, num_supersteps=50)
        shm = pagerank(small_rmat, tolerance=1e-12, max_iterations=200)
        assert np.allclose(bsp.ranks, shm.ranks, atol=1e-6)

    def test_ranks_sum_to_one(self, small_rmat):
        res = bsp_pagerank(small_rmat, num_supersteps=30)
        assert res.ranks.sum() == pytest.approx(1.0)

    def test_engine_equivalence(self, tiny_rmat):
        eng = BSPEngine(
            tiny_rmat, aggregators={"dangling": SumAggregator()}
        ).run(BSPPageRank(num_supersteps=20))
        vec = bsp_pagerank(tiny_rmat, num_supersteps=20)
        assert np.allclose(eng.values_array(), vec.ranks, atol=1e-12)

    def test_fixed_message_volume(self, tiny_rmat):
        res = bsp_pagerank(tiny_rmat, num_supersteps=5)
        assert res.messages_per_superstep[:-1] == [tiny_rmat.num_arcs] * 5
        assert res.messages_per_superstep[-1] == 0

    @pytest.mark.parametrize(
        "kwargs", [{"num_supersteps": 0}, {"damping": 1.5}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            bsp_pagerank(ring_graph(4), **kwargs)

    def test_empty_graph(self):
        res = bsp_pagerank(from_edge_list([], num_vertices=0))
        assert res.ranks.size == 0
