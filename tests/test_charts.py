"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import ascii_chart, log_ascii_chart


class TestAsciiChart:
    def test_basic_structure(self):
        out = ascii_chart("T", {"a": [1, 2, 3]}, width=20, height=5)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert sum(1 for l in lines if "|" in l) == 5
        assert any("o=a" in l for l in lines)

    def test_markers_distinct_per_series(self):
        out = ascii_chart(
            "T", {"first": [1, 1], "second": [5, 5]}, width=20, height=6
        )
        assert "o=first" in out and "x=second" in out
        assert "o" in out and "x" in out

    def test_min_max_ticks_present(self):
        out = ascii_chart("T", {"a": [2.0, 8.0]}, width=20, height=5)
        assert "8" in out and "2" in out

    def test_log_scale_skips_nonpositive(self):
        out = log_ascii_chart("T", {"a": [0, 10, 100]}, width=20, height=5)
        assert "100" in out

    def test_log_scale_all_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="plottable"):
            log_ascii_chart("T", {"a": [0, 0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ascii_chart("T", {})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError, match="small"):
            ascii_chart("T", {"a": [1]}, width=5, height=2)

    def test_constant_series_renders(self):
        out = ascii_chart("T", {"a": [3, 3, 3]}, width=15, height=4)
        assert "o" in out

    def test_x_labels(self):
        out = ascii_chart(
            "T", {"a": [1, 2]}, width=20, height=5, x_labels=[8, 128]
        )
        assert "8" in out and "128" in out

    def test_single_point(self):
        out = ascii_chart("T", {"a": [7]}, width=12, height=4)
        assert out.count("o") >= 1

    def test_scientific_ticks_for_large_values(self):
        out = ascii_chart("T", {"a": [1e6, 1e7]}, width=15, height=4)
        assert "e+0" in out


class TestCLICharts:
    def test_fig2_chart(self, capsys):
        from repro.cli import main

        assert main(["fig2", "--chart", "--scale", "9"]) == 0
        out = capsys.readouterr().out
        assert "log y" in out
        assert "o=frontier" in out

    def test_fig4_chart(self, capsys):
        from repro.cli import main

        assert main(["fig4", "--chart", "--scale", "9"]) == 0
        out = capsys.readouterr().out
        assert "seconds vs processors" in out
