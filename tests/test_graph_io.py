"""Round-trip tests for graph file I/O."""

import numpy as np
import pytest

from repro.graph import (
    from_edge_list,
    load_graph,
    read_edge_list,
    rmat,
    save_graph,
    write_edge_list,
)
from repro.graph.io import read_dimacs


class TestEdgeListRoundTrip:
    def test_unweighted(self, tmp_path):
        g = from_edge_list([(0, 1), (1, 2), (0, 3)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, num_vertices=g.num_vertices)
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_weighted(self, tmp_path):
        g = from_edge_list([(0, 1), (1, 2)], weights=[1.5, 2.5])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, num_vertices=3)
        assert g2.is_weighted
        assert g2.edge_weights(0).tolist() == [1.5]

    def test_directed(self, tmp_path):
        g = from_edge_list([(0, 1), (1, 0), (2, 0)], directed=True)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, num_vertices=3, directed=True)
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_mixed_weighting_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2 5.0\n")
        with pytest.raises(ValueError, match="mixed"):
            read_edge_list(path)

    def test_negative_vertex_id_reported_with_lineno(self, tmp_path):
        """Regression: negative ids used to flow through to CSR
        validation, failing far from the file with no line context."""
        path = tmp_path / "g.txt"
        path.write_text("0 1\n-2 3\n")
        with pytest.raises(ValueError, match=r"g\.txt:2: negative vertex id"):
            read_edge_list(path, num_vertices=4)

    def test_out_of_range_vertex_id_reported_with_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n0 9\n")
        with pytest.raises(
            ValueError, match=r"g\.txt:3: vertex id 9 out of range"
        ):
            read_edge_list(path, num_vertices=3)

    def test_non_integer_vertex_id_reported_with_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 x\n")
        with pytest.raises(ValueError, match=r"g\.txt:1: .*not an integer"):
            read_edge_list(path)

    def test_rmat_round_trip(self, tmp_path):
        g = rmat(scale=8, edge_factor=4, seed=1)
        path = tmp_path / "rmat.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, num_vertices=g.num_vertices)
        assert g.num_edges == g2.num_edges
        assert np.array_equal(g.col_idx, g2.col_idx)


class TestSnapshotRoundTrip:
    def test_unweighted(self, tmp_path):
        g = rmat(scale=8, edge_factor=4, seed=2)
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert np.array_equal(g.row_ptr, g2.row_ptr)
        assert np.array_equal(g.col_idx, g2.col_idx)
        assert g2.directed == g.directed
        assert g2.weights is None

    def test_weighted(self, tmp_path):
        g = from_edge_list([(0, 1)], weights=[4.25])
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert np.array_equal(g.weights, g2.weights)

    def test_version_check(self, tmp_path):
        path = tmp_path / "g.npz"
        np.savez(
            path,
            format_version=np.asarray(99),
            row_ptr=np.array([0]),
            col_idx=np.array([], dtype=int),
            directed=np.asarray(False),
            sorted_adjacency=np.asarray(True),
        )
        with pytest.raises(ValueError, match="version"):
            load_graph(path)


class TestDimacs:
    def test_read(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text(
            "c comment\np sp 4 3\na 1 2 5\na 2 3 7\na 4 1 2\n"
        )
        g = read_dimacs(path)
        assert g.num_vertices == 4
        assert g.directed
        assert g.has_edge(0, 1)
        assert g.edge_weights(0).tolist() == [5.0]

    def test_missing_header(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 5\n")
        with pytest.raises(ValueError, match="header"):
            read_dimacs(path)

    def test_bad_arc_line(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        with pytest.raises(ValueError, match="a u v w"):
            read_dimacs(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 0\nx nope\n")
        with pytest.raises(ValueError, match="unknown record"):
            read_dimacs(path)

    def test_out_of_range_id_reported_with_lineno(self, tmp_path):
        """Regression: ids beyond the 'p sp' header's vertex count used
        to surface as an opaque CSR-validation failure."""
        path = tmp_path / "g.gr"
        path.write_text("p sp 3 2\na 1 2 5\na 2 9 7\n")
        with pytest.raises(
            ValueError, match=r"g\.gr:3: vertex id 9 out of range"
        ):
            read_dimacs(path)

    def test_zero_id_rejected_as_one_indexed(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 3 1\na 0 2 5\n")
        with pytest.raises(ValueError, match="1-indexed"):
            read_dimacs(path)

    def test_arc_before_header_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 5\np sp 3 1\n")
        with pytest.raises(ValueError, match=r"g\.gr:1: arc line before"):
            read_dimacs(path)
