"""Tests for the distributed-cluster BSP cost model."""

import pytest

from repro.cluster import (
    ClusterMachine,
    flat_scaling_range,
    simulate_cluster_bsp,
)
from repro.xmt.trace import RegionTrace, WorkTrace


def bsp_trace(messages=1000, supersteps=3):
    t = WorkTrace()
    for i in range(supersteps):
        t.add(
            RegionTrace(
                name="bsp/superstep",
                parallel_items=100,
                instructions=1e6,
                writes=messages,
                kind="superstep",
                iteration=i,
            )
        )
    return t


class TestClusterMachine:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_machines": 0},
            {"cores_per_machine": 0},
            {"core_ips": 0},
            {"messages_per_second_per_machine": 0},
            {"barrier_seconds": -1},
            {"imbalance": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterMachine(**kwargs)

    def test_with_machines(self):
        c = ClusterMachine(num_machines=6)
        assert c.with_machines(12).num_machines == 12
        assert c.num_machines == 6


class TestSimulation:
    def test_barrier_floor(self):
        c = ClusterMachine(barrier_seconds=0.1)
        sim = simulate_cluster_bsp(bsp_trace(messages=0), c)
        assert sim.total_seconds >= 0.3  # 3 supersteps x barrier

    def test_more_machines_faster_when_heavy(self):
        heavy = bsp_trace(messages=50_000_000)
        small = simulate_cluster_bsp(heavy, ClusterMachine(num_machines=4))
        big = simulate_cluster_bsp(heavy, ClusterMachine(num_machines=64))
        assert big.total_seconds < small.total_seconds

    def test_barrier_bound_when_light(self):
        light = bsp_trace(messages=10)
        t4 = simulate_cluster_bsp(light, ClusterMachine(num_machines=4))
        t64 = simulate_cluster_bsp(light, ClusterMachine(num_machines=64))
        assert t64.total_seconds > 0.9 * t4.total_seconds  # flat

    def test_explicit_message_counts_override_writes(self):
        t = bsp_trace(messages=1_000_000, supersteps=1)
        c = ClusterMachine()
        proxy = simulate_cluster_bsp(t, c)
        exact = simulate_cluster_bsp(t, c, messages_per_superstep=[0])
        assert exact.total_seconds < proxy.total_seconds

    def test_imbalance_slows_down(self):
        t = bsp_trace(messages=50_000_000)
        balanced = ClusterMachine(imbalance=1.0)
        skewed = ClusterMachine(imbalance=3.0)
        assert (
            simulate_cluster_bsp(t, skewed).total_seconds
            > simulate_cluster_bsp(t, balanced).total_seconds
        )

    def test_requires_supersteps(self):
        t = WorkTrace()
        t.add(RegionTrace(name="loop", parallel_items=5, kind="loop"))
        with pytest.raises(ValueError, match="no supersteps"):
            simulate_cluster_bsp(t, ClusterMachine())

    def test_per_superstep_lengths(self):
        sim = simulate_cluster_bsp(bsp_trace(supersteps=5), ClusterMachine())
        assert len(sim.per_superstep_seconds) == 5


class TestFlatScaling:
    def test_light_workload_is_flat_everywhere(self):
        flat = flat_scaling_range(
            bsp_trace(messages=10), ClusterMachine(), [2, 4, 8, 16]
        )
        assert flat == [4, 8, 16]

    def test_heavy_workload_keeps_scaling(self):
        flat = flat_scaling_range(
            bsp_trace(messages=500_000_000),
            ClusterMachine(),
            [2, 4, 8, 16],
        )
        assert flat == []
