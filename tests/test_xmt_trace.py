"""Tests for work traces."""

import pytest

from repro.xmt import RegionTrace, WorkTrace


def region(name="r", items=10, iteration=-1, **kw):
    return RegionTrace(name=name, parallel_items=items, iteration=iteration, **kw)


class TestRegionTrace:
    def test_memory_ops(self):
        r = region(reads=3, writes=2, atomics=5, atomic_max_site=2)
        assert r.memory_ops == 10

    def test_total_instructions_includes_memory(self):
        r = region(instructions=7, reads=3)
        assert r.total_instructions == 10

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            region(reads=-1)
        with pytest.raises(ValueError):
            RegionTrace(name="x", parallel_items=-1)

    def test_atomic_max_site_bounded_by_atomics(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            region(atomics=3, atomic_max_site=4)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            region(kind="wat")

    def test_scaled(self):
        r = region(items=10, instructions=100, reads=50, writes=20,
                   atomics=10, atomic_max_site=5)
        s = r.scaled(2.0)
        assert s.parallel_items == 20
        assert s.instructions == 200
        assert s.atomic_max_site == 10
        assert r.instructions == 100  # original frozen

    def test_scaled_zero_items_stays_zero(self):
        assert region(items=0).scaled(3.0).parallel_items == 0

    def test_scaled_small_items_at_least_one(self):
        assert region(items=1).scaled(0.25).parallel_items == 1

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            region().scaled(0.0)


class TestWorkTrace:
    def test_add_and_len(self):
        t = WorkTrace()
        t.add(region("a"))
        t.extend([region("b"), region("c")])
        assert len(t) == 3
        assert [r.name for r in t] == ["a", "b", "c"]

    def test_totals(self):
        t = WorkTrace()
        t.add(region(reads=3, writes=1))
        t.add(region(reads=2, writes=4, atomics=5, atomic_max_site=1))
        assert t.total_reads == 5
        assert t.total_writes == 5
        assert t.total_atomics == 5
        assert t.total_instructions == 15  # 0 plain instr + 15 memory ops

    def test_iterations(self):
        t = WorkTrace()
        t.add(region(iteration=2))
        t.add(region(iteration=0))
        t.add(region(iteration=2))
        t.add(region(iteration=-1))
        assert t.iterations() == [0, 2]

    def test_for_iteration(self):
        t = WorkTrace()
        t.add(region("a", iteration=1))
        t.add(region("b", iteration=2))
        sub = t.for_iteration(1)
        assert [r.name for r in sub] == ["a"]

    def test_by_name(self):
        t = WorkTrace()
        t.add(region("x"))
        t.add(region("y"))
        t.add(region("x"))
        assert len(t.by_name("x")) == 2

    def test_serialization_round_trip(self, tmp_path):
        t = WorkTrace(label="bfs")
        t.add(region("a", items=5, iteration=0, reads=3, atomics=2,
                     atomic_max_site=1, kind="superstep"))
        t.add(region("b", items=7, instructions=11.5))
        path = tmp_path / "trace.json"
        t.save(path)
        back = WorkTrace.load(path)
        assert back.label == "bfs"
        assert len(back) == 2
        assert back.regions[0].name == "a"
        assert back.regions[0].kind == "superstep"
        assert back.regions[0].atomic_max_site == 1
        assert back.regions[1].instructions == 11.5

    def test_from_dict_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            WorkTrace.from_dict({"format_version": 99, "regions": []})

    def test_dict_round_trip_preserves_totals(self):
        t = WorkTrace()
        t.add(region(reads=10, writes=4, atomics=3, atomic_max_site=2))
        back = WorkTrace.from_dict(t.to_dict())
        assert back.total_reads == t.total_reads
        assert back.total_atomics == t.total_atomics

    def test_scaled_trace(self):
        t = WorkTrace(label="orig")
        t.add(region(reads=10))
        s = t.scaled(3.0)
        assert s.total_reads == 30
        assert s.label == "orig"
        assert t.total_reads == 10
