"""Tests for the streaming graph and incremental clustering coefficients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_list, ring_graph, rmat
from repro.graph.streaming import StreamingGraph
from repro.graphct import clustering_coefficients, count_triangles
from repro.graphct.streaming_clustering import (
    StreamingClusteringCoefficients,
)


class TestStreamingGraph:
    def test_insert_and_query(self):
        g = StreamingGraph(4)
        assert g.insert_edge(0, 1)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.num_edges == 1
        assert g.degree(0) == 1

    def test_duplicate_insert_is_noop(self):
        g = StreamingGraph(3)
        assert g.insert_edge(0, 1)
        assert not g.insert_edge(1, 0)
        assert g.num_edges == 1

    def test_delete(self):
        g = StreamingGraph(3)
        g.insert_edge(0, 1)
        assert g.delete_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 0
        assert not g.delete_edge(0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loops"):
            StreamingGraph(2).insert_edge(1, 1)

    def test_bounds_checked(self):
        g = StreamingGraph(2)
        with pytest.raises(IndexError):
            g.insert_edge(0, 5)
        with pytest.raises(IndexError):
            g.neighbors(-1)

    def test_adjacency_grows_past_initial_capacity(self):
        g = StreamingGraph(20)
        for v in range(1, 20):
            g.insert_edge(0, v)
        assert g.degree(0) == 19
        assert sorted(g.neighbors(0).tolist()) == list(range(1, 20))

    def test_batch(self):
        g = StreamingGraph(5)
        ins, dels = g.apply_batch(
            insertions=[(0, 1), (1, 2), (0, 1)], deletions=[(1, 2), (3, 4)]
        )
        assert (ins, dels) == (2, 1)
        assert g.num_edges == 1

    def test_snapshot_round_trip(self):
        g = StreamingGraph(5)
        g.apply_batch(insertions=[(0, 1), (1, 2), (3, 4), (0, 2)])
        csr = g.snapshot()
        assert sorted(csr.edges()) == [(0, 1), (0, 2), (1, 2), (3, 4)]

    def test_empty_snapshot(self):
        csr = StreamingGraph(3).snapshot()
        assert csr.num_vertices == 3 and csr.num_edges == 0

    def test_from_csr(self):
        csr = ring_graph(6)
        g = StreamingGraph.from_csr(csr)
        assert g.num_edges == 6
        assert sorted(g.snapshot().edges()) == sorted(csr.edges())

    def test_from_csr_directed_rejected(self):
        with pytest.raises(ValueError):
            StreamingGraph.from_csr(
                from_edge_list([(0, 1)], directed=True)
            )

    def test_from_csr_weighted_rejected(self):
        """Regression: weighted snapshots used to seed silently, dropping
        the weight array on the floor."""
        weighted = from_edge_list([(0, 1), (1, 2)], weights=[1.5, 2.5])
        with pytest.raises(ValueError, match="weighted graphs are not"):
            StreamingGraph.from_csr(weighted)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_set_semantics(self, data):
        n = data.draw(st.integers(min_value=2, max_value=12))
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.booleans(),
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=60,
            )
        )
        g = StreamingGraph(n)
        model: set[tuple[int, int]] = set()
        for insert, u, v in ops:
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if insert:
                assert g.insert_edge(u, v) == (key not in model)
                model.add(key)
            else:
                assert g.delete_edge(u, v) == (key in model)
                model.discard(key)
        assert g.num_edges == len(model)
        assert set(g.snapshot().edges()) == model


class TestStreamingClustering:
    def test_insert_creates_triangle(self):
        g = StreamingGraph(3)
        cc = StreamingClusteringCoefficients(g)
        cc.insert_edge(0, 1)
        cc.insert_edge(1, 2)
        assert cc.total_triangles == 0
        cc.insert_edge(0, 2)
        assert cc.total_triangles == 1
        assert cc.triangles_at(0) == 1
        assert np.allclose(cc.local_coefficients(), 1.0)

    def test_delete_removes_triangle(self):
        g = StreamingGraph(3)
        cc = StreamingClusteringCoefficients(g)
        cc.apply_batch(insertions=[(0, 1), (1, 2), (0, 2)])
        cc.delete_edge(0, 1)
        assert cc.total_triangles == 0
        assert cc.triangles_at(2) == 0

    def test_duplicate_updates_do_not_corrupt(self):
        g = StreamingGraph(3)
        cc = StreamingClusteringCoefficients(g)
        cc.apply_batch(insertions=[(0, 1), (1, 2), (0, 2)])
        assert not cc.insert_edge(0, 1)
        assert cc.total_triangles == 1
        assert cc.delete_edge(0, 1)       # first delete succeeds
        assert cc.total_triangles == 0
        assert not cc.delete_edge(0, 1)   # second is a no-op
        assert cc.total_triangles == 0

    def test_bootstrap_from_existing_graph(self, small_rmat):
        g = StreamingGraph.from_csr(small_rmat)
        cc = StreamingClusteringCoefficients(g)
        static = count_triangles(small_rmat)
        assert cc.total_triangles == static.total_triangles
        assert np.array_equal(cc._triangles, static.per_vertex)

    def test_incremental_matches_recompute_after_batch(self):
        base = rmat(scale=8, edge_factor=8, seed=4)
        g = StreamingGraph.from_csr(base)
        cc = StreamingClusteringCoefficients(g)
        rng = np.random.default_rng(9)
        n = base.num_vertices
        ins = [(int(a), int(b)) for a, b in rng.integers(0, n, (50, 2))
               if a != b]
        existing = list(base.edges())
        dels = [existing[i] for i in rng.integers(0, len(existing), 20)]
        cc.apply_batch(insertions=ins, deletions=dels)
        fresh = clustering_coefficients(g.snapshot())
        assert cc.total_triangles == fresh.triangles.total_triangles
        assert np.allclose(cc.local_coefficients(), fresh.local)
        assert cc.global_coefficient() == pytest.approx(
            fresh.global_coefficient
        )

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_incremental_equals_static(self, data):
        n = data.draw(st.integers(min_value=3, max_value=10))
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.booleans(),
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=40,
            )
        )
        g = StreamingGraph(n)
        cc = StreamingClusteringCoefficients(g)
        for insert, u, v in ops:
            if u == v:
                continue
            if insert:
                cc.insert_edge(u, v)
            else:
                cc.delete_edge(u, v)
        static = count_triangles(g.snapshot())
        assert cc.total_triangles == static.total_triangles
        assert np.array_equal(cc._triangles, static.per_vertex)

    def test_trace_records_updates(self):
        g = StreamingGraph(3)
        cc = StreamingClusteringCoefficients(g)
        cc.insert_edge(0, 1)
        cc.insert_edge(1, 2)
        assert len(cc.trace) == 2
