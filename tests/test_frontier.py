"""Frontier representation, direction-optimized BFS, and wire framing.

Three contracts from the frontier/direction work:

* **Representation independence** — the sparse (arc-index) and dense
  (boolean-mask) arc selections are interchangeable at *every* superstep
  of *every* algorithm: forcing either mode, or switching between them
  on any schedule, yields results bit-identical to the reference engine
  (values, superstep counts, message counts, work traces), on the dense
  and sharded engines alike.
* **Direction independence** — top-down and bottom-up BFS discover the
  identical frontier, so distances, message counts, and
  ``frontier_sizes`` are unchanged under any switch schedule; the
  decision surfaces only in telemetry and ``direction_history``.
* **Wire framing** — the sharded engine's byte-packed frames carry the
  same computation as the legacy pickled frames with fewer bytes on the
  pipe (``pipe_bytes`` asserts the reduction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import (
    BSPEngine,
    DenseBSPEngine,
    FrontierPolicy,
    ShardedBSPEngine,
)
from repro.bsp._scatter import arcs_from
from repro.bsp.frontier import (
    DENSE,
    SPARSE,
    arc_indices,
    select_arcs,
    selected_arc_count,
)
from repro.bsp_algorithms import (
    BSPBreadthFirstSearch,
    BSPConnectedComponents,
    BSPKCore,
    BSPShortestPaths,
    DenseBreadthFirstSearch,
    DenseConnectedComponents,
    DenseKCore,
    DenseShortestPaths,
)
from repro.bsp_algorithms.bfs import UNREACHED
from repro.graph import from_edge_list, path_graph, rmat, star_graph
from repro.telemetry.core import Telemetry
from tests.test_dense_engine import assert_results_equal

WORKER_COUNTS = (1, 2, 4)


def reference_bfs(graph, source):
    """Reference-engine BFS with UNREACHED-normalized values."""
    ref = BSPEngine(graph).run(BSPBreadthFirstSearch(source))
    ref.values = [UNREACHED if v is None else v for v in ref.values]
    return ref


class ScheduledPolicy:
    """Frontier policy fixed by an explicit per-superstep schedule.

    Duck-types :class:`FrontierPolicy` — the engines only call
    ``choose`` — so tests can force any sparse/dense switch pattern.
    """

    def __init__(self, schedule, default=SPARSE):
        self.schedule = dict(schedule)
        self.default = default

    def choose(self, *, superstep, **_):
        return self.schedule.get(superstep, self.default)


class ScheduledBFS(DenseBreadthFirstSearch):
    """BFS whose top-down/bottom-up choice follows an explicit schedule."""

    def __init__(self, source, bottom_up_from):
        super().__init__(source)
        self.bottom_up_from = bottom_up_from

    def _use_bottom_up(self, ctx):
        return ctx.superstep >= self.bottom_up_from


# -- selection helpers -----------------------------------------------------


class TestSelection:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="mode"):
            FrontierPolicy(mode="turbo")
        with pytest.raises(ValueError, match="k"):
            FrontierPolicy(k=0)

    def test_policy_threshold(self):
        policy = FrontierPolicy(k=3)
        common = dict(superstep=1, frontier_size=4, num_vertices=100)
        assert (
            policy.choose(frontier_arcs=100, num_arcs=300, **common) == SPARSE
        )
        assert (
            policy.choose(frontier_arcs=101, num_arcs=300, **common) == DENSE
        )

    def test_forced_modes_ignore_density(self):
        common = dict(
            superstep=1, frontier_size=4, num_vertices=10, num_arcs=30
        )
        sparse = FrontierPolicy(mode="sparse")
        dense = FrontierPolicy(mode="dense")
        assert sparse.choose(frontier_arcs=30, **common) == SPARSE
        assert dense.choose(frontier_arcs=0, **common) == DENSE

    @pytest.mark.parametrize(
        "make_graph",
        [lambda: rmat(scale=7, edge_factor=8, seed=3), lambda: star_graph(9)],
        ids=["rmat7", "star"],
    )
    def test_sparse_selects_same_arcs_as_mask(self, make_graph):
        g = make_graph()
        rng = np.random.default_rng(5)
        for size in (0, 1, g.num_vertices // 2, g.num_vertices):
            senders = np.sort(
                rng.choice(g.num_vertices, size=size, replace=False)
            ).astype(np.int64)
            mask = arcs_from(senders, g.row_ptr)
            idx = arc_indices(senders, g.row_ptr)
            assert np.array_equal(np.flatnonzero(mask), idx)
            assert np.array_equal(
                select_arcs(senders, g.row_ptr, DENSE), mask
            )
            assert np.array_equal(
                select_arcs(senders, g.row_ptr, SPARSE), idx
            )
            assert selected_arc_count(mask) == selected_arc_count(idx)
            # Both representations index arc-parallel arrays identically.
            assert np.array_equal(g.col_idx[mask], g.col_idx[idx])


# -- representation independence -------------------------------------------


@pytest.fixture(scope="module")
def medium_graph():
    return rmat(scale=8, edge_factor=8, seed=7)


PROGRAMS = {
    "cc": (BSPConnectedComponents, DenseConnectedComponents, ()),
    "bfs": (BSPBreadthFirstSearch, DenseBreadthFirstSearch, (0,)),
    "sssp": (BSPShortestPaths, DenseShortestPaths, (0,)),
    "kcore": (BSPKCore, DenseKCore, (2,)),
}


class TestRepresentationIndependence:
    @pytest.mark.parametrize("mode", ["sparse", "dense"])
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_forced_mode_matches_reference(self, medium_graph, name, mode):
        make_ref, make_dense, args = PROGRAMS[name]
        ref = BSPEngine(medium_graph).run(make_ref(*args))
        if name == "bfs":
            ref.values = [UNREACHED if v is None else v for v in ref.values]
        forced = DenseBSPEngine(
            medium_graph, frontier_policy=FrontierPolicy(mode=mode)
        ).run(make_dense(*args))
        assert_results_equal(ref, forced)

    def test_switch_at_every_superstep(self, medium_graph):
        """Flipping sparse->dense at any superstep changes nothing."""
        ref = BSPEngine(medium_graph).run(BSPConnectedComponents())
        supersteps = ref.num_supersteps
        for flip in range(supersteps + 1):
            policy = ScheduledPolicy(
                {s: DENSE for s in range(flip, supersteps + 1)}
            )
            got = DenseBSPEngine(medium_graph, frontier_policy=policy).run(
                DenseConnectedComponents()
            )
            assert_results_equal(ref, got)

    @pytest.mark.parametrize("num_workers", WORKER_COUNTS)
    def test_sharded_forced_modes(self, medium_graph, num_workers):
        ref = BSPEngine(medium_graph).run(BSPConnectedComponents())
        for mode in ("sparse", "dense"):
            with ShardedBSPEngine(
                medium_graph,
                num_workers=num_workers,
                frontier_policy=FrontierPolicy(mode=mode),
            ) as engine:
                got = engine.run(DenseConnectedComponents())
            assert_results_equal(ref, got)


# -- direction-optimized BFS -----------------------------------------------


class TestDirectionOptimizedBFS:
    def test_direction_validated(self):
        with pytest.raises(ValueError, match="direction"):
            DenseBreadthFirstSearch(0, direction="sideways")
        with pytest.raises(ValueError, match="alpha"):
            DenseBreadthFirstSearch(0, alpha=0)

    @pytest.mark.parametrize("direction", ["auto", "top-down", "bottom-up"])
    def test_directions_match_reference(self, medium_graph, direction):
        ref = reference_bfs(medium_graph, 0)
        got = DenseBSPEngine(medium_graph).run(
            DenseBreadthFirstSearch(0, direction=direction)
        )
        assert_results_equal(ref, got)

    def test_switch_at_every_superstep(self, medium_graph):
        ref = reference_bfs(medium_graph, 0)
        for flip in range(ref.num_supersteps + 1):
            program = ScheduledBFS(0, bottom_up_from=flip)
            got = DenseBSPEngine(medium_graph).run(program)
            assert_results_equal(ref, got)
            expected = [
                "bottom-up" if s >= flip else "top-down"
                for s in range(1, got.num_supersteps)
            ]
            assert program.direction_history == expected

    def test_auto_goes_bottom_up_past_apex(self, medium_graph):
        program = DenseBreadthFirstSearch(0, direction="auto")
        DenseBSPEngine(medium_graph).run(program)
        assert "bottom-up" in program.direction_history
        assert program.edges_scanned["bottom-up"] > 0
        # Top-down performs no per-arc work: the flood is modeled only.
        assert program.edges_scanned["top-down"] == 0

    def test_auto_stays_top_down_on_directed_graphs(self):
        g = from_edge_list(
            [(i, i + 1) for i in range(30)] + [(0, j) for j in range(2, 30)],
            num_vertices=31,
            directed=True,
        )
        program = DenseBreadthFirstSearch(0, direction="auto")
        DenseBSPEngine(g).run(program)
        assert set(program.direction_history) == {"top-down"}

    def test_forced_bottom_up_on_directed_graph_uses_transpose(self):
        g = from_edge_list(
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (3, 5)],
            num_vertices=7,
            directed=True,
        )
        ref = reference_bfs(g, 0)
        program = DenseBreadthFirstSearch(0, direction="bottom-up")
        got = DenseBSPEngine(g).run(program)
        assert_results_equal(ref, got)
        assert program.edges_scanned["bottom-up"] > 0

    @pytest.mark.parametrize("num_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("direction", ["auto", "bottom-up"])
    def test_sharded_directions(self, medium_graph, num_workers, direction):
        ref = reference_bfs(medium_graph, 0)
        with ShardedBSPEngine(
            medium_graph, num_workers=num_workers
        ) as engine:
            got = engine.run(
                DenseBreadthFirstSearch(0, direction=direction)
            )
        assert_results_equal(ref, got)

    @pytest.mark.parametrize("direction", ["auto", "top-down", "bottom-up"])
    def test_frontier_sizes_report_true_discoveries(
        self, medium_graph, direction
    ):
        """``frontier_sizes`` equals the per-level discovery counts from
        the reference engine's distances, under every direction —
        including no trailing zero for the final empty superstep."""
        ref = reference_bfs(medium_graph, 0)
        levels = np.asarray(
            [v for v in ref.values if v != UNREACHED], dtype=np.int64
        )
        truth = np.bincount(levels).tolist()
        program = DenseBreadthFirstSearch(0, direction=direction)
        DenseBSPEngine(medium_graph).run(program)
        assert program.frontier_sizes == truth

    def test_frontier_sizes_no_trailing_zero_on_path(self):
        g = path_graph(5)
        program = DenseBreadthFirstSearch(0)
        DenseBSPEngine(g).run(program)
        assert program.frontier_sizes == [1, 1, 1, 1, 1]


# -- property tests: random graphs x random schedules ----------------------


@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=1, max_value=16))
    m = draw(st.integers(min_value=0, max_value=40))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m, max_size=m,
        )
    )
    return from_edge_list(edges, n)


class TestPropertySchedules:
    @given(random_graph(), st.integers(min_value=0, max_value=63))
    @settings(max_examples=60, deadline=None)
    def test_any_mode_schedule_matches_reference(self, g, schedule_bits):
        """Sparse/dense chosen per superstep by arbitrary bits: CC stays
        bit-identical to the reference engine."""
        ref = BSPEngine(g).run(BSPConnectedComponents())
        policy = ScheduledPolicy(
            {
                s: DENSE if (schedule_bits >> s) & 1 else SPARSE
                for s in range(ref.num_supersteps + 1)
            }
        )
        got = DenseBSPEngine(g, frontier_policy=policy).run(
            DenseConnectedComponents()
        )
        assert_results_equal(ref, got)

    @given(random_graph(), st.integers(min_value=0, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_any_direction_switch_matches_reference(self, g, flip):
        ref = reference_bfs(g, 0)
        got = DenseBSPEngine(g).run(ScheduledBFS(0, bottom_up_from=flip))
        assert_results_equal(ref, got)


# -- telemetry counters ----------------------------------------------------


class TestFrontierTelemetry:
    def test_dense_bfs_counters(self, medium_graph):
        tel = Telemetry("t")
        DenseBSPEngine(medium_graph, telemetry=tel).run(
            DenseBreadthFirstSearch(0)
        )
        names = {c.name for c in tel.counters}
        assert {"frontier_mode", "direction", "edges_scanned"} <= names
        modes = [c for c in tel.counters if c.name == "frontier_mode"]
        assert all(c.value in (0, 1) for c in modes)
        # The apex superstep floods most of the graph: dense must appear.
        assert any(c.value == 1 for c in modes)
        directions = [c for c in tel.counters if c.name == "direction"]
        scanned = [c for c in tel.counters if c.name == "edges_scanned"]
        assert len(directions) == len(scanned)
        assert all(c.superstep >= 0 for c in directions)

    def test_sharded_pipe_byte_counters(self, medium_graph):
        tel = Telemetry("t")
        with ShardedBSPEngine(
            medium_graph, num_workers=2, telemetry=tel
        ) as engine:
            engine.run(DenseConnectedComponents())
            assert engine.pipe_bytes > 0
        names = {c.name for c in tel.counters}
        assert {"pipe_bytes", "pipe_bytes_legacy"} <= names
        packed = sum(
            c.value for c in tel.counters if c.name == "pipe_bytes"
        )
        legacy = sum(
            c.value for c in tel.counters if c.name == "pipe_bytes_legacy"
        )
        assert packed < legacy


# -- wire framing ----------------------------------------------------------


class TestWireFraming:
    def test_invalid_wire_rejected(self):
        with pytest.raises(ValueError, match="wire"):
            ShardedBSPEngine(star_graph(4), num_workers=2, wire="telegraph")

    def test_wire_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDED_WIRE", "pickle")
        with ShardedBSPEngine(star_graph(4), num_workers=2) as engine:
            assert engine.wire_format == "pickle"
        monkeypatch.delenv("REPRO_SHARDED_WIRE")
        with ShardedBSPEngine(star_graph(4), num_workers=2) as engine:
            assert engine.wire_format == "packed"

    @pytest.mark.parametrize(
        "make_program",
        [
            lambda: DenseConnectedComponents(),
            lambda: DenseBreadthFirstSearch(0),
        ],
        ids=["cc", "bfs"],
    )
    def test_packed_matches_pickle_with_fewer_bytes(
        self, medium_graph, make_program
    ):
        results = {}
        for wire in ("packed", "pickle"):
            with ShardedBSPEngine(
                medium_graph, num_workers=2, wire=wire
            ) as engine:
                results[wire] = (engine.run(make_program()), engine)
        packed, packed_engine = results["packed"]
        pickled, pickle_engine = results["pickle"]
        assert_results_equal(pickled, packed)
        assert 0 < packed_engine.pipe_bytes < pickle_engine.pipe_bytes
