"""Equivalence suite: the sharded engine against the dense engine.

The contract under test: :class:`~repro.bsp.parallel.ShardedBSPEngine`
runs the *same* dense programs as :class:`~repro.bsp.dense.DenseBSPEngine`
and produces the same :class:`~repro.bsp.engine.BSPResult` — identical
values, superstep counts, per-superstep active/message counts, and work
traces — at any worker count and under either partition policy.  Plus
the pool's own mechanics: reuse across runs, crash safety, checkpoint
interchange with the dense engine, and constructor validation.

Set ``SHARDED_WORKERS`` (comma-separated) to restrict the worker counts
exercised — CI's multiprocessing smoke job runs the suite with
``SHARDED_WORKERS=2``.
"""

import os

import numpy as np
import pytest

from repro.bsp import (
    CheckpointStore,
    DenseBSPEngine,
    ShardedBSPEngine,
    ShardedWorkerError,
    SumAggregator,
    make_engine,
)
from repro.bsp_algorithms import (
    DenseBreadthFirstSearch,
    DenseConnectedComponents,
    DenseKCore,
    DensePageRank,
    DenseShortestPaths,
)
from repro.graph import from_edge_list, rmat, star_graph
from tests.test_dense_engine import assert_results_equal

WORKER_COUNTS = [
    int(w) for w in os.environ.get("SHARDED_WORKERS", "1,2,4").split(",")
]
POLICIES = ["hash", "balanced-edge"]

GRAPHS = {
    "star": lambda: star_graph(8),
    "isolated": lambda: from_edge_list([(0, 1), (2, 3)], num_vertices=7),
    "rmat8": lambda: rmat(scale=8, edge_factor=8, seed=7),
}

#: name -> (program factory, engine kwargs, float-tolerant values?)
ALGORITHMS = {
    "cc": (lambda: DenseConnectedComponents(), {}, False),
    "bfs": (lambda: DenseBreadthFirstSearch(0), {}, False),
    "sssp": (lambda: DenseShortestPaths(0), {}, False),
    # Sharded float summation may differ from the single-pass fold in
    # the last ulp (per-shard partial sums merge in shard order) — the
    # same tolerance the dense-vs-reference PageRank test uses.
    "pagerank": (
        lambda: DensePageRank(num_supersteps=8),
        {"aggregators": {"dangling": SumAggregator()}},
        True,
    ),
    "kcore": (lambda: DenseKCore(2), {}, False),
}


@pytest.fixture(params=sorted(GRAPHS), scope="module")
def graph(request):
    return GRAPHS[request.param]()


@pytest.fixture(params=WORKER_COUNTS, ids=lambda w: f"w{w}", scope="module")
def num_workers(request):
    return request.param


@pytest.fixture(params=POLICIES, scope="module")
def partition(request):
    return request.param


class TestShardedEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_matches_dense(self, graph, num_workers, partition, algorithm):
        make_program, engine_kwargs, float_values = ALGORITHMS[algorithm]
        dense = DenseBSPEngine(graph, **engine_kwargs).run(make_program())
        with ShardedBSPEngine(
            graph,
            num_workers=num_workers,
            partition=partition,
            **engine_kwargs,
        ) as engine:
            sharded = engine.run(make_program())
        assert_results_equal(dense, sharded, float_values=float_values)

    def test_pool_reuse_across_runs(self, graph):
        """One warm pool serves many programs back to back."""
        with ShardedBSPEngine(graph, num_workers=2) as engine:
            for name in ("cc", "bfs", "sssp"):
                make_program, engine_kwargs, float_values = ALGORITHMS[name]
                dense = DenseBSPEngine(graph, **engine_kwargs).run(
                    make_program()
                )
                sharded = engine.run(make_program())
                assert_results_equal(dense, sharded, float_values=float_values)

    def test_exact_at_one_worker_pagerank(self, graph):
        """A single shard is one fold — bit-identical even for floats."""
        dense = DenseBSPEngine(graph).run(DensePageRank(num_supersteps=8))
        with ShardedBSPEngine(graph, num_workers=1) as engine:
            sharded = engine.run(DensePageRank(num_supersteps=8))
        assert np.array_equal(dense.values, sharded.values)

    def test_combine_messages_accounting(self, graph):
        dense = DenseBSPEngine(graph, combine_messages=True).run(
            DenseConnectedComponents()
        )
        with ShardedBSPEngine(
            graph, num_workers=2, combine_messages=True
        ) as engine:
            sharded = engine.run(DenseConnectedComponents())
        assert_results_equal(dense, sharded)

    def test_custom_assignment(self, graph):
        """An explicit per-vertex placement array is honoured."""
        n = graph.num_vertices
        assignment = (np.arange(n) < n // 2).astype(np.int64)
        dense = DenseBSPEngine(graph).run(DenseConnectedComponents())
        with ShardedBSPEngine(
            graph, num_workers=2, partition=assignment
        ) as engine:
            assert engine.partition_policy == "custom"
            sharded = engine.run(DenseConnectedComponents())
        assert_results_equal(dense, sharded)

    def test_weighted_sssp(self):
        rng = np.random.default_rng(11)
        edges = [(i % 20, (i * 7 + 3) % 20) for i in range(40)]
        weights = rng.uniform(0.1, 5.0, size=len(edges))
        g = from_edge_list(edges, num_vertices=20, weights=weights)
        dense = DenseBSPEngine(g).run(DenseShortestPaths(0))
        with ShardedBSPEngine(g, num_workers=2) as engine:
            sharded = engine.run(DenseShortestPaths(0))
        assert_results_equal(dense, sharded)

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=0)
        with ShardedBSPEngine(g, num_workers=2) as engine:
            result = engine.run(DenseConnectedComponents())
        assert result.num_supersteps == 0
        assert result.values.size == 0

    def test_spawn_start_method(self):
        """The pool also works under the spawn start method."""
        g = star_graph(6)
        dense = DenseBSPEngine(g).run(DenseConnectedComponents())
        with ShardedBSPEngine(
            g, num_workers=2, start_method="spawn"
        ) as engine:
            sharded = engine.run(DenseConnectedComponents())
        assert_results_equal(dense, sharded)


# -- crash safety ----------------------------------------------------------


class PoisonPayloadCC(DenseConnectedComponents):
    """CC whose arc payload (computed *inside the workers*) raises."""

    def arc_payload(self, graph, values, arc_mask):
        raise RuntimeError("injected shard failure")


class TestShardedCrashSafety:
    def test_raising_program_surfaces_worker_error(self):
        g = rmat(scale=6, edge_factor=8, seed=3)
        engine = ShardedBSPEngine(g, num_workers=2)
        try:
            with pytest.raises(ShardedWorkerError, match="injected"):
                engine.run(PoisonPayloadCC())
            # The pool survives a program failure: workers answered with
            # an error instead of dying, so the engine stays usable.
            dense = DenseBSPEngine(g).run(DenseConnectedComponents())
            recovered = engine.run(DenseConnectedComponents())
            assert_results_equal(dense, recovered)
        finally:
            engine.close()
        assert all(not p.is_alive() for p in engine._procs)

    def test_close_is_idempotent_and_terminal(self):
        g = star_graph(5)
        engine = ShardedBSPEngine(g, num_workers=2)
        engine.run(DenseConnectedComponents())
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.run(DenseConnectedComponents())

    def test_values_survive_close(self):
        g = star_graph(5)
        engine = ShardedBSPEngine(g, num_workers=2)
        result = engine.run(DenseConnectedComponents())
        engine.close()
        assert np.array_equal(result.values, np.zeros(6, dtype=np.int64))
        assert engine.values.shape == (6,)


# -- checkpoint interchange ------------------------------------------------


class TestShardedCheckpoints:
    def test_dense_checkpoint_resumes_on_sharded(self):
        g = rmat(scale=7, edge_factor=8, seed=5)
        clean = DenseBSPEngine(g).run(DenseConnectedComponents())
        store = CheckpointStore()
        DenseBSPEngine(g).run(
            DenseConnectedComponents(),
            max_supersteps=3,
            checkpoint_every=2,
            checkpoint_store=store,
        )
        with ShardedBSPEngine(g, num_workers=2) as engine:
            resumed = engine.run(
                DenseConnectedComponents(), resume_from=store.latest
            )
        assert np.array_equal(resumed.values, clean.values)
        assert resumed.num_supersteps == clean.num_supersteps

    def test_sharded_checkpoint_resumes_on_dense(self):
        g = rmat(scale=7, edge_factor=8, seed=5)
        clean = DenseBSPEngine(g).run(DenseConnectedComponents())
        store = CheckpointStore()
        with ShardedBSPEngine(g, num_workers=2) as engine:
            engine.run(
                DenseConnectedComponents(),
                max_supersteps=3,
                checkpoint_every=2,
                checkpoint_store=store,
            )
        resumed = DenseBSPEngine(g).run(
            DenseConnectedComponents(), resume_from=store.latest
        )
        assert np.array_equal(resumed.values, clean.values)
        assert resumed.num_supersteps == clean.num_supersteps


# -- construction & selection ----------------------------------------------


class TestEngineSelection:
    def test_make_engine_modes(self):
        g = star_graph(4)
        dense = make_engine(g)
        assert type(dense) is DenseBSPEngine
        dense.close()
        with make_engine(g, "sharded", num_workers=2) as engine:
            assert isinstance(engine, ShardedBSPEngine)
            assert engine.num_workers == 2
        with make_engine(g, num_workers=2) as engine:
            assert isinstance(engine, ShardedBSPEngine)
        with pytest.raises(ValueError, match="mode"):
            make_engine(g, "turbo")

    def test_invalid_partition_policy(self):
        g = star_graph(4)
        with pytest.raises(ValueError, match="partition"):
            ShardedBSPEngine(g, num_workers=2, partition="nope")

    def test_invalid_assignment_shape(self):
        g = star_graph(4)
        with pytest.raises(ValueError, match="one entry per vertex"):
            ShardedBSPEngine(g, num_workers=2, partition=np.zeros(3))

    def test_assignment_out_of_range(self):
        g = star_graph(4)
        with pytest.raises(ValueError, match=r"\[0, 2\)"):
            ShardedBSPEngine(
                g, num_workers=2, partition=np.full(5, 7, dtype=np.int64)
            )

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="num_workers"):
            ShardedBSPEngine(star_graph(4), num_workers=0)
