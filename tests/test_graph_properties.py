"""Tests for graph property utilities and subgraph extraction."""

import numpy as np
import pytest

from repro.graph import (
    connected_component_sizes,
    degree_statistics,
    extract_subgraph,
    from_edge_list,
    is_symmetric,
    largest_component_subgraph,
    reachable_from,
    ring_graph,
    star_graph,
)
from repro.graph.properties import _ragged_arange, giant_component_vertex


class TestDegreeStatistics:
    def test_star(self):
        s = degree_statistics(star_graph(9))
        assert s.max_degree == 9
        assert s.min_degree == 1
        assert s.isolated_vertices == 0
        assert s.skew == pytest.approx(9 / (18 / 10))

    def test_empty(self):
        s = degree_statistics(from_edge_list([], num_vertices=0))
        assert s.max_degree == 0 and s.skew == 0.0

    def test_isolated_counted(self):
        s = degree_statistics(from_edge_list([(0, 1)], num_vertices=4))
        assert s.isolated_vertices == 2


class TestSymmetry:
    def test_undirected_symmetric(self):
        assert is_symmetric(ring_graph(5))

    def test_directed_asymmetric(self):
        g = from_edge_list([(0, 1)], directed=True)
        assert not is_symmetric(g)

    def test_directed_but_symmetric_arcs(self):
        g = from_edge_list([(0, 1), (1, 0)], directed=True)
        assert is_symmetric(g)


class TestReachability:
    def test_two_components(self):
        g = from_edge_list([(0, 1), (2, 3)])
        mask = reachable_from(g, 0)
        assert mask.tolist() == [True, True, False, False]

    def test_isolated_source(self):
        g = from_edge_list([(0, 1)], num_vertices=3)
        mask = reachable_from(g, 2)
        assert mask.tolist() == [False, False, True]

    def test_out_of_range_source(self):
        with pytest.raises(IndexError):
            reachable_from(ring_graph(4), 9)

    def test_ring_fully_reachable(self):
        assert reachable_from(ring_graph(11), 0).all()


class TestComponents:
    def test_sizes_sorted_descending(self):
        g = from_edge_list([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        assert connected_component_sizes(g).tolist() == [3, 2, 1]

    def test_single_component(self):
        assert connected_component_sizes(ring_graph(7)).tolist() == [7]

    def test_giant_component_vertex(self):
        g = from_edge_list([(0, 1), (2, 3), (3, 4), (4, 5)], num_vertices=6)
        v = giant_component_vertex(g)
        assert v in (2, 3, 4, 5)


class TestRaggedArange:
    def test_basic(self):
        out = _ragged_arange(np.array([2, 0, 3]))
        assert out.tolist() == [0, 1, 0, 1, 2]

    def test_empty(self):
        assert _ragged_arange(np.array([], dtype=int)).size == 0

    def test_all_zero(self):
        assert _ragged_arange(np.array([0, 0])).size == 0

    def test_leading_zero(self):
        out = _ragged_arange(np.array([0, 2, 1]))
        assert out.tolist() == [0, 1, 0]

    def test_single_run(self):
        assert _ragged_arange(np.array([4])).tolist() == [0, 1, 2, 3]


class TestSubgraph:
    def test_induced_edges_only(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 3)])
        sub, ids = extract_subgraph(g, [1, 2])
        assert ids.tolist() == [1, 2]
        assert sorted(sub.edges()) == [(0, 1)]

    def test_relabelling_dense(self):
        g = from_edge_list([(0, 5)], num_vertices=6)
        sub, ids = extract_subgraph(g, [5, 0])
        assert ids.tolist() == [0, 5]
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)

    def test_duplicate_ids_collapsed(self):
        g = from_edge_list([(0, 1)])
        sub, ids = extract_subgraph(g, [0, 0, 1])
        assert ids.tolist() == [0, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            extract_subgraph(ring_graph(4), [10])

    def test_weighted_subgraph(self):
        g = from_edge_list([(0, 1), (1, 2)], weights=[3.0, 4.0])
        sub, _ = extract_subgraph(g, [0, 1])
        assert sub.is_weighted
        assert sub.edge_weights(0).tolist() == [3.0]

    def test_directed_subgraph(self):
        g = from_edge_list([(0, 1), (1, 0), (1, 2)], directed=True)
        sub, _ = extract_subgraph(g, [0, 1])
        assert sorted(sub.edges()) == [(0, 1), (1, 0)]

    def test_largest_component(self):
        g = from_edge_list([(0, 1), (2, 3), (3, 4)], num_vertices=5)
        sub, ids = largest_component_subgraph(g)
        assert sub.num_vertices == 3
        assert ids.tolist() == [2, 3, 4]
