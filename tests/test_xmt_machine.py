"""Tests for the XMT machine configuration."""

import math

import pytest

from repro.xmt import PNNL_XMT, XMTMachine


class TestValidation:
    def test_defaults_are_the_paper_machine(self):
        assert PNNL_XMT.num_processors == 128
        assert PNNL_XMT.streams_per_processor == 128
        assert PNNL_XMT.clock_hz == 500e6
        # "over 12 thousand hardware thread contexts"
        assert PNNL_XMT.total_streams > 12_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_processors": 0},
            {"streams_per_processor": 0},
            {"clock_hz": 0},
            {"stream_utilization": 0.0},
            {"stream_utilization": 1.5},
            {"memory_latency_cycles": -1},
            {"atomic_service_cycles": -1},
            {"loop_startup_cycles": -1},
            {"barrier_cycles_per_log2p": -1},
            {"superstep_overhead_cycles": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            XMTMachine(**kwargs)


class TestDerived:
    def test_effective_streams(self):
        m = XMTMachine(num_processors=4, streams_per_processor=10,
                       stream_utilization=0.5)
        assert m.effective_streams == 20

    def test_issue_bandwidth_is_processor_count(self):
        assert XMTMachine(num_processors=16).issue_bandwidth == 16.0

    def test_concurrency_clamped_to_streams(self):
        m = XMTMachine(num_processors=2, streams_per_processor=4,
                       stream_utilization=1.0)
        assert m.concurrency(3) == 3
        assert m.concurrency(100) == 8
        assert m.concurrency(0) == 1.0

    def test_barrier_grows_with_log_p(self):
        cheap = XMTMachine(num_processors=8).barrier_cycles()
        costly = XMTMachine(num_processors=128).barrier_cycles()
        assert costly > cheap
        assert costly == pytest.approx(cheap * math.log2(128) / math.log2(8))

    def test_with_processors(self):
        m = PNNL_XMT.with_processors(16)
        assert m.num_processors == 16
        assert m.streams_per_processor == PNNL_XMT.streams_per_processor
        assert PNNL_XMT.num_processors == 128  # original untouched

    def test_seconds(self):
        m = XMTMachine(clock_hz=500e6)
        assert m.seconds(500e6) == 1.0
