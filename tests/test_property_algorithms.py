"""Property-based tests (hypothesis): algorithm invariants and
cross-model equivalence on random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import BSPEngine
from repro.bsp_algorithms import (
    BSPBreadthFirstSearch,
    BSPConnectedComponents,
    bsp_breadth_first_search,
    bsp_connected_components,
    bsp_count_triangles,
    bsp_sssp,
)
from repro.graph import from_edge_list
from repro.graphct import (
    breadth_first_search,
    connected_components,
    count_triangles,
    k_core_decomposition,
    sssp,
)


@st.composite
def graphs(draw, max_vertices=20, max_edges=50):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return from_edge_list(edges, n)


class TestConnectedComponentsProperties:
    @given(graphs())
    @settings(max_examples=60)
    def test_bsp_and_shared_memory_agree(self, g):
        assert np.array_equal(
            bsp_connected_components(g).labels,
            connected_components(g).labels,
        )

    @given(graphs())
    @settings(max_examples=60)
    def test_labels_respect_edges(self, g):
        labels = connected_components(g).labels
        src, dst = g.arc_sources(), g.col_idx
        assert np.all(labels[src] == labels[dst])

    @given(graphs())
    @settings(max_examples=60)
    def test_label_is_minimum_member(self, g):
        labels = connected_components(g).labels
        for lbl in np.unique(labels):
            assert np.flatnonzero(labels == lbl).min() == lbl

    @given(graphs(max_vertices=12, max_edges=24))
    @settings(max_examples=25, deadline=None)
    def test_engine_matches_vectorized(self, g):
        eng = BSPEngine(g).run(BSPConnectedComponents())
        vec = bsp_connected_components(g)
        assert np.array_equal(
            eng.values_array(dtype=np.int64), vec.labels
        )
        assert eng.messages_per_superstep == vec.messages_per_superstep


class TestBFSProperties:
    @given(graphs(), st.data())
    @settings(max_examples=60)
    def test_bsp_and_shared_memory_agree(self, g, data):
        src = data.draw(
            st.integers(min_value=0, max_value=g.num_vertices - 1)
        )
        assert np.array_equal(
            bsp_breadth_first_search(g, src).distances,
            breadth_first_search(g, src).distances,
        )

    @given(graphs(), st.data())
    @settings(max_examples=60)
    def test_triangle_inequality_on_edges(self, g, data):
        """Adjacent vertices' BFS distances differ by at most 1."""
        src = data.draw(
            st.integers(min_value=0, max_value=g.num_vertices - 1)
        )
        dist = breadth_first_search(g, src).distances
        u, v = g.arc_sources(), g.col_idx
        both = (dist[u] >= 0) & (dist[v] >= 0)
        assert np.all(np.abs(dist[u[both]] - dist[v[both]]) <= 1)
        # Reachability is symmetric along an edge.
        assert np.all((dist[u] >= 0) == (dist[v] >= 0))

    @given(graphs(max_vertices=12, max_edges=24), st.data())
    @settings(max_examples=25, deadline=None)
    def test_engine_matches_vectorized(self, g, data):
        src = data.draw(
            st.integers(min_value=0, max_value=g.num_vertices - 1)
        )
        eng = BSPEngine(g).run(BSPBreadthFirstSearch(src))
        vec = bsp_breadth_first_search(g, src)
        eng_dist = np.asarray(
            [-1 if x is None else x for x in eng.values], dtype=np.int64
        )
        assert np.array_equal(eng_dist, vec.distances)

    @given(graphs(), st.data())
    @settings(max_examples=40)
    def test_messages_equal_frontier_incident_arcs(self, g, data):
        src = data.draw(
            st.integers(min_value=0, max_value=g.num_vertices - 1)
        )
        bsp = bsp_breadth_first_search(g, src)
        deg = g.degrees()
        dist = bsp.distances
        for level, msgs in enumerate(bsp.messages_per_superstep):
            frontier = np.flatnonzero(dist == level)
            assert msgs == int(deg[frontier].sum())


class TestTriangleProperties:
    @given(graphs())
    @settings(max_examples=50)
    def test_bsp_and_shared_memory_agree(self, g):
        assert (
            bsp_count_triangles(g).total_triangles
            == count_triangles(g).total_triangles
        )

    @given(graphs())
    @settings(max_examples=50)
    def test_per_vertex_sums_to_three_per_triangle(self, g):
        res = count_triangles(g)
        assert int(res.per_vertex.sum()) == 3 * res.total_triangles

    @given(graphs())
    @settings(max_examples=50)
    def test_ordering_invariance(self, g):
        assert (
            count_triangles(g, ordering="id").total_triangles
            == count_triangles(g, ordering="degree").total_triangles
        )

    @given(graphs())
    @settings(max_examples=50)
    def test_triangles_bounded_by_wedges(self, g):
        res = count_triangles(g)
        assert res.total_triangles <= res.wedges_checked


class TestSSSPProperties:
    @given(graphs(), st.data())
    @settings(max_examples=40)
    def test_unweighted_sssp_equals_bfs(self, g, data):
        src = data.draw(
            st.integers(min_value=0, max_value=g.num_vertices - 1)
        )
        d_bfs = breadth_first_search(g, src).distances
        d_sssp = sssp(g, src).distances
        reached = d_bfs >= 0
        assert np.array_equal(d_sssp[reached], d_bfs[reached].astype(float))
        assert np.all(np.isinf(d_sssp[~reached]))

    @given(graphs(), st.data())
    @settings(max_examples=40)
    def test_bsp_sssp_matches_shared(self, g, data):
        src = data.draw(
            st.integers(min_value=0, max_value=g.num_vertices - 1)
        )
        assert np.array_equal(
            bsp_sssp(g, src).distances, sssp(g, src).distances
        )

    @given(graphs(), st.data())
    @settings(max_examples=40)
    def test_edge_relaxation_fixpoint(self, g, data):
        """No edge can improve a finished SSSP solution."""
        src = data.draw(
            st.integers(min_value=0, max_value=g.num_vertices - 1)
        )
        dist = sssp(g, src).distances
        u, v = g.arc_sources(), g.col_idx
        finite = np.isfinite(dist[u])
        assert np.all(dist[v[finite]] <= dist[u[finite]] + 1)


class TestKCoreProperties:
    @given(graphs())
    @settings(max_examples=50)
    def test_core_number_bounded_by_degree(self, g):
        core = k_core_decomposition(g).core_numbers
        assert np.all(core <= g.degrees())

    @given(graphs())
    @settings(max_examples=50)
    def test_kcore_subgraph_min_degree(self, g):
        """Every vertex of the k-core has >= k neighbours in the k-core."""
        res = k_core_decomposition(g)
        k = res.max_core
        if k == 0:
            return
        members = set(res.core_members(k).tolist())
        for v in members:
            inside = sum(
                1 for w in g.neighbors(v).tolist() if w in members
            )
            assert inside >= k
