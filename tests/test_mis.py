"""Tests for maximal independent set in both programming models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import BSPEngine
from repro.bsp_algorithms.mis import (
    _IN_SET,
    BSPLubyMIS,
    bsp_maximal_independent_set,
)
from repro.graph import from_edge_list, ring_graph, rmat, star_graph
from repro.graphct.mis import maximal_independent_set


def assert_valid_mis(graph, in_set):
    """Independence + maximality — the defining invariants."""
    src, dst = graph.arc_sources(), graph.col_idx
    assert not np.any(in_set[src] & in_set[dst]), "set not independent"
    for v in np.flatnonzero(~in_set):
        assert in_set[graph.neighbors(v)].any(), (
            f"vertex {v} excluded without a member neighbour"
        )


class TestGreedyMIS:
    def test_valid_on_rmat(self, small_rmat):
        res = maximal_independent_set(small_rmat)
        assert_valid_mis(small_rmat, res.in_set)

    def test_lexicographically_first(self):
        g = from_edge_list([(0, 1), (1, 2), (2, 3)])
        res = maximal_independent_set(g)
        assert res.in_set.tolist() == [True, False, True, False]

    def test_isolated_vertices_always_in(self):
        g = from_edge_list([(0, 1)], num_vertices=4)
        res = maximal_independent_set(g)
        assert res.in_set[2] and res.in_set[3]

    def test_star(self):
        res = maximal_independent_set(star_graph(5))
        assert res.in_set[0]  # hub is vertex 0, greedy takes it first
        assert res.size == 1

    def test_directed_rejected(self):
        with pytest.raises(ValueError):
            maximal_independent_set(from_edge_list([(0, 1)], directed=True))


class TestLubyMIS:
    def test_valid_on_rmat(self, small_rmat):
        res = bsp_maximal_independent_set(small_rmat)
        assert_valid_mis(small_rmat, res.in_set)

    def test_logarithmic_rounds(self, small_rmat):
        res = bsp_maximal_independent_set(small_rmat)
        assert res.num_rounds <= 12  # O(log n) w.h.p., n = 1024

    def test_engine_equivalence(self):
        g = rmat(scale=7, edge_factor=8, seed=4)
        for seed in (0, 3):
            eng = BSPEngine(g).run(BSPLubyMIS(seed=seed))
            vec = bsp_maximal_independent_set(g, seed=seed)
            assert np.array_equal(
                np.asarray(eng.values) == _IN_SET, vec.in_set
            )

    def test_seed_changes_set_not_validity(self, small_rmat):
        a = bsp_maximal_independent_set(small_rmat, seed=1)
        b = bsp_maximal_independent_set(small_rmat, seed=2)
        assert not np.array_equal(a.in_set, b.in_set)
        assert_valid_mis(small_rmat, a.in_set)
        assert_valid_mis(small_rmat, b.in_set)

    def test_isolated_vertices_join(self):
        g = from_edge_list([(0, 1)], num_vertices=4)
        res = bsp_maximal_independent_set(g)
        assert res.in_set[2] and res.in_set[3]

    def test_two_supersteps_per_round(self, small_rmat):
        res = bsp_maximal_independent_set(small_rmat)
        assert res.num_supersteps == 2 * res.num_rounds
        assert len(res.messages_per_superstep) == res.num_supersteps

    def test_validation(self):
        with pytest.raises(ValueError):
            bsp_maximal_independent_set(ring_graph(4), max_rounds=0)
        with pytest.raises(ValueError):
            bsp_maximal_independent_set(
                from_edge_list([(0, 1)], directed=True)
            )

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_valid_mis(self, data):
        n = data.draw(st.integers(min_value=1, max_value=16))
        m = data.draw(st.integers(min_value=0, max_value=40))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=m, max_size=m,
            )
        )
        seed = data.draw(st.integers(min_value=0, max_value=100))
        g = from_edge_list(edges, n)
        res = bsp_maximal_independent_set(g, seed=seed)
        assert_valid_mis(g, res.in_set)
        greedy = maximal_independent_set(g)
        assert_valid_mis(g, greedy.in_set)
