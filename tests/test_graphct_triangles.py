"""Tests for GraphCT triangle counting and clustering coefficients."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edge_list, ring_graph, star_graph, two_d_grid
from repro.graphct import clustering_coefficients, count_triangles


def complete_graph(n):
    return from_edge_list([(i, j) for i in range(n) for j in range(i + 1, n)])


class TestTriangleCounts:
    def test_single_triangle(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2)])
        res = count_triangles(g)
        assert res.total_triangles == 1
        assert res.per_vertex.tolist() == [1, 1, 1]

    def test_bowtie(self, two_triangles):
        res = count_triangles(two_triangles)
        assert res.total_triangles == 2
        assert res.per_vertex[2] == 2  # shared vertex is in both

    def test_triangle_free(self):
        assert count_triangles(ring_graph(8)).total_triangles == 0
        assert count_triangles(star_graph(10)).total_triangles == 0
        assert count_triangles(two_d_grid(5, 5)).total_triangles == 0

    def test_complete_graph(self):
        n = 8
        res = count_triangles(complete_graph(n))
        expected = n * (n - 1) * (n - 2) // 6
        assert res.total_triangles == expected
        assert np.all(res.per_vertex == (n - 1) * (n - 2) // 2)

    def test_matches_networkx(self, small_rmat, small_rmat_nx):
        res = count_triangles(small_rmat)
        oracle = nx.triangles(small_rmat_nx)
        assert res.total_triangles == sum(oracle.values()) // 3
        assert res.per_vertex.tolist() == [
            oracle[v] for v in range(small_rmat.num_vertices)
        ]

    def test_degree_ordering_same_count(self, small_rmat):
        by_id = count_triangles(small_rmat, ordering="id")
        by_degree = count_triangles(small_rmat, ordering="degree")
        assert by_id.total_triangles == by_degree.total_triangles

    def test_degree_ordering_fewer_wedges_on_skewed_graph(self, small_rmat):
        """The ablation's point: degree ordering shrinks the wedge set."""
        by_id = count_triangles(small_rmat, ordering="id")
        by_degree = count_triangles(small_rmat, ordering="degree")
        assert by_degree.wedges_checked < by_id.wedges_checked

    def test_unknown_ordering_rejected(self, two_triangles):
        with pytest.raises(ValueError, match="ordering"):
            count_triangles(two_triangles, ordering="random")

    def test_directed_rejected(self):
        g = from_edge_list([(0, 1)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            count_triangles(g)

    def test_empty_graph(self):
        g = from_edge_list([], num_vertices=4)
        res = count_triangles(g)
        assert res.total_triangles == 0
        assert res.wedges_checked == 0


class TestWorkAccounting:
    def test_writes_only_for_found_triangles(self, small_rmat):
        """Paper §V: shared memory 'only produces a write when a triangle
        is detected'."""
        res = count_triangles(small_rmat)
        assert res.trace.total_writes == res.total_triangles

    def test_reads_are_the_triply_nested_loop(self, two_triangles):
        res = count_triangles(two_triangles)
        deg = two_triangles.degrees().astype(float)
        assert res.trace.total_reads == pytest.approx(float(np.sum(deg**2)))

    def test_wedges_bounded_by_ordered_pairs(self, small_rmat):
        res = count_triangles(small_rmat)
        deg = small_rmat.degrees().astype(float)
        assert res.total_triangles <= res.wedges_checked
        assert res.wedges_checked <= np.sum(deg * (deg - 1)) / 2


class TestClusteringCoefficients:
    def test_complete_graph_all_ones(self):
        res = clustering_coefficients(complete_graph(6))
        assert np.allclose(res.local, 1.0)
        assert res.global_coefficient == pytest.approx(1.0)

    def test_triangle_free_all_zero(self):
        res = clustering_coefficients(two_d_grid(4, 4))
        assert np.all(res.local == 0)
        assert res.global_coefficient == 0.0

    def test_matches_networkx(self, small_rmat, small_rmat_nx):
        res = clustering_coefficients(small_rmat)
        oracle = nx.clustering(small_rmat_nx)
        for v in range(small_rmat.num_vertices):
            assert res.local[v] == pytest.approx(oracle[v])

    def test_global_matches_networkx_transitivity(
        self, small_rmat, small_rmat_nx
    ):
        res = clustering_coefficients(small_rmat)
        assert res.global_coefficient == pytest.approx(
            nx.transitivity(small_rmat_nx)
        )

    def test_low_degree_vertices_zero(self):
        g = from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3)])
        res = clustering_coefficients(g)
        assert res.local[3] == 0.0  # degree-1 vertex

    def test_empty_graph(self):
        res = clustering_coefficients(from_edge_list([], num_vertices=3))
        assert res.global_coefficient == 0.0
