"""The `repro check` gate: linter rules, combiner contracts, race detector.

Three layers, each with a failing fixture:

* **Linter** — one nondeterministic/racy program per rule REP101–REP106
  is flagged at the right line, `# repro: noqa[RULE]` suppresses (and is
  counted), and the control-flow cases that used to false-positive
  (mutate-then-return branches, single-statement read+store) stay
  clean.  The whole in-tree `src/` must lint clean — that is the CI
  gate's contract.
* **Contracts** — a broken non-commutative combiner is caught with a
  counterexample; the in-tree combiners pass with the documented
  informational notes (sum: non-idempotent, float-ulp-close).
* **Race detector** — a seeded sharded run in check mode stays
  bit-identical to the dense engine at 1/2/4 workers with zero races; a
  program whose ``arc_payload`` writes worker-dependent values to
  shared state raises :class:`ShardedWriteRaceError` at 2 workers, and
  non-conflicting writes warn.  Packed wire frames are structurally
  validated (:class:`WireFormatError`).
"""

import json
import struct
import textwrap
import warnings

import numpy as np
import pytest

from repro.bsp._wire import PackedWire, WireFormatError
from repro.bsp.dense import DenseBSPEngine
from repro.bsp.parallel import ShardedBSPEngine, ShardedWriteRaceError
from repro.bsp_algorithms.connected_components import DenseConnectedComponents
from repro.check import (
    RULES,
    audit_instance,
    audit_paths,
    lint_paths,
    lint_source,
)
from repro.check.cli import REPORT_FORMAT_VERSION
from repro.check.cli import main as check_main
from repro.graph import rmat

WORKER_COUNTS = (1, 2, 4)

#: Common header for linter fixtures (bases resolve by name tail).
HEADER = """\
import os
import random
import time
import numpy as np
from repro.bsp.dense import DenseVertexProgram
from repro.bsp.vertex import VertexProgram
"""


def lint(body):
    return lint_source(HEADER + textwrap.dedent(body), path="fixture.py")


def rule_ids(result):
    return [d.rule for d in result.diagnostics]


# -- linter rules -----------------------------------------------------------


class TestLinterRules:
    def test_rep101_unseeded_random(self):
        result = lint("""
            class P(VertexProgram):
                def compute(self, ctx, messages):
                    ctx.value = random.random()
        """)
        assert rule_ids(result) == ["REP101"]
        assert result.diagnostics[0].severity == "error"

    def test_rep101_numpy_global_rng(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[:] = np.random.rand(ctx.values.size)
        """)
        assert rule_ids(result) == ["REP101"]

    def test_rep101_unseeded_default_rng_vs_seeded(self):
        flagged = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    rng = np.random.default_rng()
        """)
        assert rule_ids(flagged) == ["REP101"]
        clean = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    rng = np.random.default_rng(ctx.superstep)
        """)
        assert rule_ids(clean) == []

    def test_rep102_wall_clock(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[0] = time.time()
        """)
        assert rule_ids(result) == ["REP102"]

    def test_rep103_global_declaration(self):
        result = lint("""
            STEP = 0
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    global STEP
                    STEP += 1
        """)
        assert "REP103" in rule_ids(result)

    def test_rep103_class_state_store(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    type(self).last_superstep = ctx.superstep
        """)
        assert rule_ids(result) == ["REP103"]

    def test_rep103_arc_payload_writes_shared_values(self):
        result = lint("""
            class P(DenseVertexProgram):
                def arc_payload(self, graph, values, selection):
                    values[0] = 1.0
                    return values[selection]
        """)
        assert rule_ids(result) == ["REP103"]

    def test_rep103_arc_payload_self_mutation(self):
        result = lint("""
            class P(DenseVertexProgram):
                def arc_payload(self, graph, values, selection):
                    self.calls += 1
                    return values[selection]
        """)
        assert rule_ids(result) == ["REP103"]

    def test_rep104_read_after_mutation(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[:] = 0.0
                    total = ctx.messages.sum()
        """)
        assert rule_ids(result) == ["REP104"]

    def test_rep104_alias_tracking(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    labels = ctx.values
                    labels[0] = 1.0
                    total = ctx.messages.sum()
        """)
        assert rule_ids(result) == ["REP104"]

    def test_rep104_mutating_branch_that_returns_is_clean(self):
        # The connected_components.py:90 shape: mutation inside a branch
        # that returns cannot precede the fall-through read.
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    if ctx.superstep == 0:
                        ctx.values[:] = 0.0
                        return None
                    best = ctx.messages
                    ctx.values[:] = best
        """)
        assert rule_ids(result) == []

    def test_rep104_single_statement_read_and_store_is_clean(self):
        # The pagerank.py shape: the RHS (reading ctx.messages)
        # evaluates before the store to ctx.values.
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[:] = 0.15 + 0.85 * ctx.messages
        """)
        assert rule_ids(result) == []

    def test_rep104_mutating_branch_that_falls_through_is_flagged(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    if ctx.superstep == 0:
                        ctx.values[:] = 0.0
                    total = ctx.messages.sum()
        """)
        assert rule_ids(result) == ["REP104"]

    def test_rep105_set_iteration(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    for v in {1, 2, 3}:
                        ctx.values[v] = 0.0
        """)
        assert rule_ids(result) == ["REP105"]
        assert result.diagnostics[0].severity == "warning"
        assert result.error_count == 0

    def test_rep106_order_sensitive_accumulation(self):
        result = lint("""
            class P(DenseVertexProgram):
                def arc_payload(self, graph, values, selection):
                    return np.cumsum(values[selection])
        """)
        assert rule_ids(result) == ["REP106"]

    def test_rep106_selection_misuse(self):
        # Treating the opaque selection as an index array breaks under
        # the dense (boolean-mask) representation.
        result = lint("""
            class P(DenseVertexProgram):
                def arc_payload(self, graph, values, selection):
                    return values[selection + 0]
        """)
        assert rule_ids(result) == ["REP106"]

    def test_rep106_fancy_index_and_count_are_clean(self):
        result = lint("""
            from repro.bsp.frontier import selected_arc_count
            class P(DenseVertexProgram):
                def arc_payload(self, graph, values, selection):
                    n = selected_arc_count(selection)
                    return values[graph.arc_sources()[selection]]
        """)
        assert rule_ids(result) == []

    def test_non_program_classes_are_not_linted(self):
        result = lint("""
            class Helper:
                def compute(self, ctx):
                    return random.random()
        """)
        assert rule_ids(result) == []
        assert result.programs_checked == 0

    def test_transitive_subclass_is_linted(self):
        result = lint("""
            class Base(DenseVertexProgram):
                pass
            class Child(Base):
                def compute(self, ctx):
                    ctx.values[0] = time.time()
        """)
        assert rule_ids(result) == ["REP102"]

    def test_syntax_error_counts_as_error(self):
        result = lint_source("def broken(:\n", path="broken.py")
        assert result.errors
        assert result.error_count == 1


class TestSuppression:
    def test_noqa_specific_rule(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[0] = time.time()  # repro: noqa[REP102]
        """)
        assert rule_ids(result) == []
        assert result.suppressed == 1

    def test_noqa_bare_suppresses_all(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[0] = time.time() + random.random()  # repro: noqa
        """)
        assert rule_ids(result) == []
        assert result.suppressed == 2

    def test_noqa_other_rule_does_not_suppress(self):
        result = lint("""
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[0] = time.time()  # repro: noqa[REP101]
        """)
        assert rule_ids(result) == ["REP102"]
        assert result.suppressed == 0


class TestInTreeClean:
    def test_src_lints_clean(self):
        result = lint_paths(["src"])
        assert result.error_count == 0, [
            d.format() for d in result.diagnostics
        ]
        assert result.programs_checked > 0

    def test_rule_catalog_is_wired(self):
        assert set(RULES) == {
            "REP101", "REP102", "REP103", "REP104", "REP105", "REP106",
        }


# -- combiner contracts -----------------------------------------------------


class TestCombinerContracts:
    def test_broken_non_commutative_combiner_caught(self, tmp_path):
        bad = tmp_path / "bad_combiner.py"
        bad.write_text(textwrap.dedent("""\
            from repro.bsp.combiners import Combiner

            class SubtractCombiner(Combiner):
                def combine(self, a, b):
                    return a - b
        """))
        contracts = audit_paths([tmp_path])
        assert [c.name for c in contracts] == ["SubtractCombiner"]
        contract = contracts[0]
        assert not contract.ok
        assert not contract.commutative
        assert "commutativity" in contract.counterexamples

    def test_non_associative_combiner_caught(self):
        contract = audit_instance(lambda a, b: a + b + 1 if a < b else a + b)
        assert not contract.ok

    def test_in_tree_combiners_pass(self):
        contracts = audit_paths(["src/repro/bsp/combiners.py"])
        by_name = {c.name: c for c in contracts}
        assert set(by_name) == {"MinCombiner", "MaxCombiner", "SumCombiner"}
        assert all(c.ok for c in contracts)
        # Informational verdicts the report surfaces:
        assert by_name["MinCombiner"].idempotent
        assert by_name["MinCombiner"].float_exact
        assert not by_name["SumCombiner"].idempotent
        assert not by_name["SumCombiner"].float_exact

    def test_abstract_base_is_skipped_not_failed(self):
        contracts = audit_paths(["src/repro/bsp/combiners.py"])
        assert all(c.name != "Combiner" or c.skipped for c in contracts)


# -- CLI --------------------------------------------------------------------


class TestCLI:
    def test_clean_path_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text(HEADER + textwrap.dedent("""\
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[:] = ctx.messages
        """))
        assert check_main([str(clean)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(HEADER + textwrap.dedent("""\
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[0] = time.time()
        """))
        assert check_main([str(dirty)]) == 1
        assert "REP102" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert check_main([str(tmp_path / "nope")]) == 2

    def test_failed_contract_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent("""\
            from repro.bsp.combiners import Combiner

            class SubtractCombiner(Combiner):
                def combine(self, a, b):
                    return a - b
        """))
        assert check_main([str(bad), "--contracts"]) == 1
        assert "CONTRACT [error]" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_json_format_schema(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(HEADER + textwrap.dedent("""\
            class P(DenseVertexProgram):
                def compute(self, ctx):
                    ctx.values[0] = time.time()  # repro: noqa[REP102]
                    ctx.values[1] = time.perf_counter()
        """))
        assert check_main([str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == REPORT_FORMAT_VERSION
        assert payload["tool"] == "repro check"
        assert payload["ok"] is False
        [diag] = payload["diagnostics"]
        assert diag["rule"] == "REP102"
        assert diag["severity"] == "error"
        assert diag["path"].endswith("dirty.py")
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["suppressed"] == 1
        assert payload["contracts"] is None

    def test_json_clean_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert check_main([str(clean), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_repro_cli_routes_check(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert repro_main(["check", str(clean)]) == 0


# -- wire-frame validation --------------------------------------------------


class _Loopback:
    """Minimal Connection stand-in: send_bytes/recv_bytes over a list."""

    def __init__(self):
        self.frames = []

    def send_bytes(self, frame):
        self.frames.append(bytes(frame))

    def recv_bytes(self):
        return self.frames.pop(0)


class TestWireValidation:
    def decode(self, buf):
        conn = _Loopback()
        conn.frames.append(buf)
        return PackedWire().recv(conn)

    def test_roundtrip_still_works(self):
        wire = PackedWire()
        conn = _Loopback()
        senders = np.array([3, 5, 8], dtype=np.int64)
        wire.send(conn, ("scatter", 7, senders, "sparse"))
        msg, _ = wire.recv(conn)
        assert msg[0] == "scatter" and msg[1] == 7
        np.testing.assert_array_equal(msg[2], senders)

    def test_empty_frame(self):
        with pytest.raises(WireFormatError, match="empty"):
            self.decode(b"")

    def test_unknown_command_code(self):
        with pytest.raises(WireFormatError, match="unknown wire code"):
            self.decode(bytes([0x55]))

    def test_truncated_scatter_header(self):
        with pytest.raises(WireFormatError, match="truncated scatter"):
            self.decode(bytes([0x02]) + b"\x00\x00")

    def test_scatter_length_mismatch(self):
        # Declares 4 senders, carries 1.
        frame = (
            bytes([0x02])
            + struct.pack("<qBq", 1, 0, 4)
            + np.array([9], dtype=np.int64).tobytes()
        )
        with pytest.raises(WireFormatError, match="declares 4 sender"):
            self.decode(frame)

    def test_scatter_bad_mode_code(self):
        frame = bytes([0x02]) + struct.pack("<qBq", 1, 9, 0)
        with pytest.raises(WireFormatError, match="frontier-mode"):
            self.decode(frame)

    def test_ok_reply_length_mismatch(self):
        frame = bytes([0x00, 3]) + struct.pack("<q", 1)
        with pytest.raises(WireFormatError, match="declares 3 int"):
            self.decode(frame)

    def test_close_with_trailing_bytes(self):
        with pytest.raises(WireFormatError, match="trailing"):
            self.decode(bytes([0x04, 0xFF]))

    def test_run_frame_bad_pickle(self):
        with pytest.raises(WireFormatError, match="unpickle"):
            self.decode(bytes([0x01]) + b"not-a-pickle")


# -- sharded write-race detector --------------------------------------------


class _ConflictingCC(DenseConnectedComponents):
    """arc_payload writes a worker-dependent value to shared state."""

    def arc_payload(self, graph, values, selection):
        payload = super().arc_payload(graph, values, selection)
        values[0] = float(np.asarray(selection).sum())
        return payload


class _BenignWriteCC(DenseConnectedComponents):
    """arc_payload writes, but every worker writes the same value."""

    def arc_payload(self, graph, values, selection):
        payload = super().arc_payload(graph, values, selection)
        values[0] = -1.0
        return payload


@pytest.fixture(scope="module")
def medium_graph():
    return rmat(scale=8, edge_factor=8, seed=7)


class TestWriteRaceDetector:
    def test_check_mode_bit_identical_with_zero_races(self, medium_graph):
        ref = DenseBSPEngine(medium_graph).run(DenseConnectedComponents())
        for workers in WORKER_COUNTS:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # any race warning fails
                with ShardedBSPEngine(
                    medium_graph, num_workers=workers, check=True
                ) as engine:
                    res = engine.run(DenseConnectedComponents())
            np.testing.assert_array_equal(res.values, ref.values)
            assert res.messages_per_superstep == ref.messages_per_superstep
            assert res.num_supersteps == ref.num_supersteps

    def test_conflicting_writes_raise_at_two_workers(self, medium_graph):
        with ShardedBSPEngine(
            medium_graph, num_workers=2, check=True
        ) as engine:
            with pytest.raises(
                ShardedWriteRaceError, match="differing values"
            ) as excinfo:
                engine.run(_ConflictingCC())
        exc = excinfo.value
        assert exc.superstep >= 0
        (vertex, by_worker), *_ = exc.conflicts
        assert vertex == 0
        assert len(by_worker) == 2
        assert len(set(by_worker.values())) > 1

    def test_benign_writes_warn(self, medium_graph):
        with ShardedBSPEngine(
            medium_graph, num_workers=2, check=True
        ) as engine:
            with pytest.warns(RuntimeWarning, match="must be read-only"):
                engine.run(_BenignWriteCC())

    def test_env_enabled_check_matches_reference_engine(
        self, medium_graph, monkeypatch
    ):
        from repro.bsp import BSPEngine
        from repro.bsp_algorithms import BSPConnectedComponents
        from tests.test_dense_engine import assert_results_equal

        ref = BSPEngine(medium_graph).run(BSPConnectedComponents())
        monkeypatch.setenv("REPRO_SHARDED_CHECK", "1")
        for workers in WORKER_COUNTS:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # zero races reported
                with ShardedBSPEngine(
                    medium_graph, num_workers=workers
                ) as engine:
                    assert engine.check is True
                    res = engine.run(DenseConnectedComponents())
            assert_results_equal(ref, res)

    def test_check_off_by_default_and_env_flips_it(
        self, medium_graph, monkeypatch
    ):
        with ShardedBSPEngine(medium_graph, num_workers=1) as engine:
            assert engine.check is False
        monkeypatch.setenv("REPRO_SHARDED_CHECK", "1")
        with ShardedBSPEngine(medium_graph, num_workers=1) as engine:
            assert engine.check is True
        # Explicit kwarg beats the environment.
        with ShardedBSPEngine(
            medium_graph, num_workers=1, check=False
        ) as engine:
            assert engine.check is False

    def test_racy_program_untouched_without_check(self, medium_graph):
        # Sanity: the detector, not the engine, is what catches it.
        with ShardedBSPEngine(
            medium_graph, num_workers=2, check=False
        ) as engine:
            engine.run(_BenignWriteCC())  # no raise, no warning
