"""Tests for the benchmark history ledger and regression gate.

Covers provenance stamping, the append-only JSONL store, metric
flattening and classification, median+MAD baselines, the gate's
ok/improved/regressed/new verdicts (including the two acceptance
scenarios: a synthetic 2x slowdown and a drifted deterministic
counter), the ASCII renderings, the ``repro bench`` CLI, and the
strict-JSON sanitization of ``benchmarks/_emit.py``.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench import (
    Baseline,
    Ledger,
    Record,
    classify_metric,
    collect_provenance,
    compare_table,
    evaluate_record,
    fingerprint_of,
    flatten_metrics,
    format_gate_reports,
    gate_ledger,
    sanitize,
    sparkline,
    trend_table,
)
from repro.cli import main as cli_main


def _payload(mean_s=1.0, supersteps=9, messages=12345, *, rss=50_000_000,
             fingerprint="aaaa00000000", scale=10):
    """A synthetic BENCH payload with controllable knobs."""
    return {
        "schema_version": 2,
        "benchmark": "engine_modes",
        "config": {"algorithm": "cc", "scale": scale, "seed": 1},
        "data": {
            "supersteps": supersteps,
            "messages": messages,
            "timing": {"mean_s": mean_s},
        },
        "memory": {"peak_rss_bytes": rss},
        "provenance": {
            "git_sha": "deadbeef" * 5,
            "git_branch": "main",
            "timestamp_utc": "2026-08-06T00:00:00+00:00",
            "hostname": "host-a",
            "cpu_count": 8,
            "fingerprint": fingerprint,
        },
    }


def _seed(ledger, means=(1.0, 1.02, 0.98, 1.01), **kwargs):
    """Record a stable baseline history into ``ledger``."""
    for m in means:
        ledger.append(_payload(mean_s=m, **kwargs))


@pytest.fixture
def ledger(tmp_path):
    return Ledger(str(tmp_path / "history"))


# ---------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------
class TestProvenance:
    def test_carries_git_and_fingerprint(self):
        prov = collect_provenance()
        # This test runs inside the repository checkout.
        assert prov["git_sha"] and len(prov["git_sha"]) == 40
        assert prov["git_branch"]
        assert prov["fingerprint"] == fingerprint_of(
            prov["hostname"], prov["cpu_count"], prov["machine"],
            prov["python"],
        )
        assert prov["timestamp_utc"].endswith("+00:00")
        assert prov["repro_version"]

    def test_fingerprint_is_stable_and_discriminating(self):
        a = fingerprint_of("h", 8, "x86_64", "3.11.1")
        assert a == fingerprint_of("h", 8, "x86_64", "3.11.1")
        assert a != fingerprint_of("h", 4, "x86_64", "3.11.1")

    def test_append_stamps_missing_provenance(self, ledger):
        doc = _payload()
        doc.pop("provenance")
        rec = ledger.append(doc)
        assert rec.git_sha and rec.fingerprint
        (stored,) = ledger.records("engine_modes")
        assert stored.git_sha == rec.git_sha


# ---------------------------------------------------------------------
# Ledger store
# ---------------------------------------------------------------------
class TestLedger:
    def test_append_only_jsonl(self, ledger):
        _seed(ledger)
        path = Path(ledger.path("engine_modes"))
        assert path.suffix == ".jsonl"
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            doc = json.loads(line)
            assert doc["benchmark"] == "engine_modes"
            assert doc["provenance"]["fingerprint"]
        assert ledger.benchmarks() == ["engine_modes"]
        records = ledger.records("engine_modes")
        assert [
            r.data["timing"]["mean_s"] for r in records
        ] == [1.0, 1.02, 0.98, 1.01]

    def test_memory_block_folds_into_data(self, ledger):
        ledger.append(_payload(rss=123456789))
        (rec,) = ledger.records("engine_modes")
        assert rec.data["memory"]["peak_rss_bytes"] == 123456789
        assert "memory.peak_rss_bytes" in flatten_metrics(rec.data)

    def test_nonfinite_floats_sanitized(self, ledger):
        doc = _payload()
        doc["data"]["ratio"] = float("nan")
        doc["data"]["worst"] = float("inf")
        ledger.append(doc)
        raw = Path(ledger.path("engine_modes")).read_text()
        assert "NaN" not in raw and "Infinity" not in raw
        parsed = json.loads(
            raw, parse_constant=lambda c: pytest.fail(f"token {c}")
        )
        assert parsed["data"]["ratio"] is None

    def test_nameless_record_rejected(self, ledger):
        with pytest.raises(ValueError, match="benchmark name"):
            ledger.append({"config": {}, "data": {"x": 1}})

    def test_sanitize_helper(self):
        out = sanitize({"a": [1.0, float("nan")], "b": float("-inf")})
        assert out == {"a": [1.0, None], "b": None}


# ---------------------------------------------------------------------
# Metric flattening and classification
# ---------------------------------------------------------------------
class TestMetrics:
    def test_flatten_nested(self):
        flat = flatten_metrics(
            {"timing": {"mean_s": 0.5}, "seconds": {"cc": {"2": 1.5}},
             "n": 7, "name": "x", "flag": True, "series": [1, 2]}
        )
        assert flat == {
            "timing.mean_s": 0.5,
            "seconds.cc.2": 1.5,
            "n": 7.0,
            "series.0": 1.0,
            "series.1": 2.0,
        }

    @pytest.mark.parametrize(
        "path,values,kind",
        [
            ("timing.mean_s", [0.5], "noisy"),
            ("seconds.dense", [1.0], "noisy"),
            ("speedup", [25.0], "noisy"),
            ("memory.peak_rss_bytes", [5e7], "noisy"),
            ("worker_busy_ns", [100.0], "noisy"),
            ("supersteps", [9.0], "exact"),
            ("messages", [12345.0], "exact"),
            ("modeled_cycles", [1e9], "exact"),
            ("write_ratio", [181.4], "noisy"),  # non-integral float
            ("host_cores", [8.0], "info"),
            ("timing.rounds", [1.0], "info"),
        ],
    )
    def test_classification(self, path, values, kind):
        assert classify_metric(path, values) == kind

    def test_baseline_median_and_mad(self):
        base = Baseline("m", "noisy", values=(1.0, 1.2, 0.8, 1.1, 0.9))
        assert base.median == pytest.approx(1.0)
        assert base.mad == pytest.approx(0.1)
        assert base.sigma == pytest.approx(0.14826)
        assert base.last == 0.9
        assert Baseline("m", "noisy").median is None


# ---------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------
class TestGate:
    def test_clean_history_passes(self, ledger):
        _seed(ledger)
        ledger.append(_payload(mean_s=1.03))
        (report,) = gate_ledger(ledger)
        assert report.ok
        statuses = {v.metric: v.status for v in report.verdicts}
        assert statuses["timing.mean_s"] == "ok"
        assert statuses["supersteps"] == "ok"

    def test_two_x_slowdown_regresses(self, ledger):
        _seed(ledger)
        ledger.append(_payload(mean_s=2.0))
        (report,) = gate_ledger(ledger)
        assert not report.ok
        (reg,) = report.regressions
        assert reg.metric == "timing.mean_s"
        assert "median" in reg.detail

    def test_improvement_is_not_a_failure(self, ledger):
        _seed(ledger)
        ledger.append(_payload(mean_s=0.5))
        (report,) = gate_ledger(ledger)
        assert report.ok
        statuses = {v.metric: v.status for v in report.verdicts}
        assert statuses["timing.mean_s"] == "improved"

    def test_deterministic_counter_drift_regresses(self, ledger):
        _seed(ledger)
        ledger.append(_payload(mean_s=1.0, supersteps=10))
        (report,) = gate_ledger(ledger)
        assert not report.ok
        (reg,) = report.regressions
        assert reg.metric == "supersteps" and reg.kind == "exact"
        assert "correctness" in reg.detail

    def test_deterministic_gate_ignores_fingerprint(self, ledger):
        # One prior run on another machine still pins exact counters...
        ledger.append(_payload(fingerprint="bbbb11111111"))
        ledger.append(_payload(mean_s=55.0, messages=99))
        (report,) = gate_ledger(ledger)
        statuses = {v.metric: v.status for v in report.verdicts}
        assert statuses["messages"] == "regressed"
        # ...while the wildly different timing stays ungated (only one
        # cross-machine run, below min_runs on this fingerprint).
        assert statuses["timing.mean_s"] == "new"

    def test_noisy_gate_requires_same_config(self, ledger):
        _seed(ledger, scale=14)
        ledger.append(_payload(mean_s=9.9, supersteps=13, scale=10))
        (report,) = gate_ledger(ledger)
        assert report.ok  # different workload: nothing comparable
        assert all(
            v.status in ("new", "skipped") for v in report.verdicts
        )

    def test_noise_band_scales_with_history_scatter(self, ledger):
        # A noisy series (scatter ~0.4) must tolerate a value that a
        # dead-stable series would flag.
        _seed(ledger, means=(1.0, 1.4, 0.7, 1.3, 0.8))
        ledger.append(_payload(mean_s=1.6))
        (report,) = gate_ledger(ledger)
        assert report.ok

    def test_evaluate_record_excludes_self(self, ledger):
        _seed(ledger)
        records = ledger.records("engine_modes")
        report = evaluate_record(records[-1], records[:-1])
        assert {v.metric for v in report.verdicts} >= {
            "timing.mean_s", "supersteps", "messages",
        }


# ---------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------
class TestRender:
    def test_sparkline_shape(self):
        line = sparkline([1.0, 2.0, 3.0], width=8)
        assert len(line) == 3
        assert line[0] == "_" and line[-1] == "@"
        assert sparkline([5.0, 5.0]) == "++"
        assert sparkline([]) == ""
        assert sparkline([float("nan"), 1.0]) == "?+"

    def test_trend_table_from_three_runs(self, ledger):
        _seed(ledger, means=(1.0, 1.1, 0.9))
        table = trend_table(
            "engine_modes", ledger.records("engine_modes")
        )
        assert "3 run(s)" in table
        assert "deadbeefdead" in table  # provenance SHA cited
        for metric in ("timing.mean_s", "supersteps", "messages"):
            assert metric in table
        # Every metric row ends with a 3-column sparkline.
        rows = [
            line for line in table.splitlines()
            if line.startswith("timing.mean_s")
        ]
        assert rows and len(rows[0].split()[-1]) == 3

    def test_gate_report_rendering(self, ledger):
        _seed(ledger)
        ledger.append(_payload(mean_s=2.0))
        text = format_gate_reports(gate_ledger(ledger))
        assert "gate: FAIL" in text
        assert "[REG] timing.mean_s" in text

    def test_compare_table(self, ledger):
        _seed(ledger, means=(1.0, 2.0))
        a, b = ledger.records("engine_modes")
        table = compare_table(a, b)
        assert "timing.mean_s" in table and "+100.0%" in table


# ---------------------------------------------------------------------
# The bench CLI (through the top-level repro entry point)
# ---------------------------------------------------------------------
class TestBenchCLI:
    def _emit_payload(self, tmp_path, **kwargs):
        path = tmp_path / "BENCH_engine_modes.json"
        path.write_text(json.dumps(_payload(**kwargs)))
        return path

    def test_record_report_gate_roundtrip(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_HISTORY_DIR", str(tmp_path / "history")
        )
        payload = self._emit_payload(tmp_path)
        for mean in (1.0, 1.02, 0.98):
            payload.write_text(json.dumps(_payload(mean_s=mean)))
            assert cli_main(["bench", "record", str(payload)]) == 0
        out = capsys.readouterr().out
        assert out.count("recorded engine_modes") == 3
        assert "deadbeefdead" in out

        assert cli_main(["bench", "report"]) == 0
        out = capsys.readouterr().out
        assert "engine_modes: 3 run(s)" in out
        assert "timing.mean_s" in out

        assert cli_main(["bench", "gate"]) == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_gate_exits_nonzero_on_slowdown(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_HISTORY_DIR", str(tmp_path / "history")
        )
        for mean in (1.0, 1.02, 0.98, 2.1):
            payload = self._emit_payload(tmp_path, mean_s=mean)
            assert cli_main(["bench", "record", str(payload)]) == 0
        assert cli_main(["bench", "gate"]) == 1
        assert "gate: FAIL" in capsys.readouterr().out

    def test_gate_exits_nonzero_on_counter_drift(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_HISTORY_DIR", str(tmp_path / "history")
        )
        for supersteps in (9, 10):
            payload = self._emit_payload(
                tmp_path, supersteps=supersteps
            )
            assert cli_main(["bench", "record", str(payload)]) == 0
        assert cli_main(["bench", "gate"]) == 1
        out = capsys.readouterr().out
        assert "[REG] supersteps" in out

    def test_record_scans_bench_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_HISTORY_DIR", str(tmp_path / "history")
        )
        self._emit_payload(tmp_path)
        rc = cli_main(["bench", "record", "--from-dir", str(tmp_path)])
        assert rc == 0
        assert "recorded engine_modes" in capsys.readouterr().out

    def test_record_without_payloads_fails(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_HISTORY_DIR", str(tmp_path / "history")
        )
        rc = cli_main(
            ["bench", "record", "--from-dir", str(tmp_path / "empty")]
        )
        assert rc == 1

    def test_compare_cli(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_HISTORY_DIR", str(tmp_path / "history")
        )
        for mean in (1.0, 1.5):
            payload = self._emit_payload(tmp_path, mean_s=mean)
            cli_main(["bench", "record", str(payload)])
        capsys.readouterr()
        assert cli_main(["bench", "compare", "engine_modes"]) == 0
        assert "+50.0%" in capsys.readouterr().out
        assert cli_main(["bench", "compare", "missing"]) == 1


# ---------------------------------------------------------------------
# benchmarks/_emit.py (imported from its real location)
# ---------------------------------------------------------------------
@pytest.fixture
def emit_module():
    path = (
        Path(__file__).resolve().parents[1] / "benchmarks" / "_emit.py"
    )
    spec = importlib.util.spec_from_file_location("_emit_under_test", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


class TestEmit:
    def test_payload_is_v2_with_provenance_and_memory(
        self, emit_module, tmp_path
    ):
        out = emit_module.emit_bench(
            "unit", config={"scale": 4}, data={"n": 3},
            path=str(tmp_path / "BENCH_unit.json"),
        )
        doc = json.loads(Path(out).read_text())
        assert doc["schema_version"] == 2
        assert doc["provenance"]["git_sha"]
        assert doc["provenance"]["fingerprint"]
        assert doc["memory"]["peak_rss_bytes"] > 0

    def test_nan_and_inf_sanitized(self, emit_module, tmp_path):
        """Regression: json.dump used to emit bare NaN/Infinity tokens."""
        import numpy as np

        out = emit_module.emit_bench(
            "unit_nan",
            data={
                "ratio": float("nan"),
                "ceiling": float("inf"),
                "arr": np.array([1.0, np.nan]),
                "np_scalar": np.float64("-inf"),
            },
            path=str(tmp_path / "BENCH_unit_nan.json"),
        )
        raw = Path(out).read_text()
        assert "NaN" not in raw and "Infinity" not in raw
        doc = json.loads(
            raw, parse_constant=lambda c: pytest.fail(f"token {c}")
        )
        assert doc["data"]["ratio"] is None
        assert doc["data"]["arr"] == [1.0, None]
        assert doc["data"]["np_scalar"] is None

    def test_ledger_roundtrip_of_emitted_payload(
        self, emit_module, tmp_path
    ):
        out = emit_module.emit_bench(
            "unit_rt", config={"scale": 4},
            data={"supersteps": 5, "timing": {"mean_s": 0.25}},
            path=str(tmp_path / "BENCH_unit_rt.json"),
        )
        ledger = Ledger(str(tmp_path / "history"))
        rec = ledger.record_file(out)
        assert rec.git_sha and rec.fingerprint
        flat = flatten_metrics(rec.data)
        assert flat["supersteps"] == 5.0
        assert flat["memory.peak_rss_bytes"] > 0
