"""Tests for the functional XMT memory simulation."""

import numpy as np
import pytest

from repro.runtime import OpCounter
from repro.xmt import (
    AtomicCounter,
    FullEmptyArray,
    HashedMemory,
    MemoryDeadlockError,
)


class TestFullEmptyArray:
    def test_readff_leaves_full(self):
        fe = FullEmptyArray(2, fill=7)
        assert fe.readff(0) == 7
        assert fe.is_full(0)

    def test_readfe_consumes(self):
        fe = FullEmptyArray(2, fill=7)
        assert fe.readfe(0) == 7
        assert not fe.is_full(0)

    def test_readfe_on_empty_deadlocks(self):
        fe = FullEmptyArray(1, initially_full=False)
        with pytest.raises(MemoryDeadlockError, match="readfe"):
            fe.readfe(0)

    def test_readff_on_empty_deadlocks(self):
        fe = FullEmptyArray(1, initially_full=False)
        with pytest.raises(MemoryDeadlockError, match="readff"):
            fe.readff(0)

    def test_writeef_produces(self):
        fe = FullEmptyArray(1, initially_full=False)
        fe.writeef(0, 42)
        assert fe.readff(0) == 42

    def test_writeef_on_full_deadlocks(self):
        fe = FullEmptyArray(1, fill=1)
        with pytest.raises(MemoryDeadlockError, match="writeef"):
            fe.writeef(0, 2)

    def test_producer_consumer_handshake(self):
        fe = FullEmptyArray(1, initially_full=False)
        fe.writeef(0, 1)
        assert fe.readfe(0) == 1
        fe.writeef(0, 2)
        assert fe.readfe(0) == 2

    def test_write_xf_unconditional(self):
        fe = FullEmptyArray(1, fill=1)
        fe.write_xf(0, 9)
        assert fe.readff(0) == 9

    def test_purge(self):
        fe = FullEmptyArray(1, fill=1)
        fe.purge(0)
        assert not fe.is_full(0)
        fe.writeef(0, 3)
        assert fe.readff(0) == 3

    def test_bounds_checked(self):
        fe = FullEmptyArray(1)
        with pytest.raises(IndexError):
            fe.readff(1)
        with pytest.raises(IndexError):
            fe.write_xf(-1, 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FullEmptyArray(-1)

    def test_counter_instrumentation(self):
        c = OpCounter()
        fe = FullEmptyArray(2, fill=0, counter=c)
        fe.readff(0)
        fe.write_xf(1, 5)
        fe.purge(1)
        assert c.reads == 1
        assert c.writes == 2

    def test_snapshot_is_copy(self):
        fe = FullEmptyArray(2, fill=3)
        snap = fe.snapshot()
        snap[0] = 99
        assert fe.readff(0) == 3


class TestAtomicCounter:
    def test_fetch_add_returns_old(self):
        a = AtomicCounter(10)
        assert a.fetch_add(5) == 10
        assert a.value == 15

    def test_default_delta(self):
        a = AtomicCounter()
        a.fetch_add()
        assert a.value == 1

    def test_contention_tracked(self):
        a = AtomicCounter()
        for _ in range(7):
            a.fetch_add()
        assert a.contended_ops == 7
        assert a.counter.atomics == 7

    def test_reset(self):
        a = AtomicCounter(5)
        a.fetch_add()
        a.reset(2)
        assert a.value == 2
        assert a.contended_ops == 0

    def test_shared_op_counter(self):
        c = OpCounter()
        a = AtomicCounter(counter=c)
        b = AtomicCounter(counter=c)
        a.fetch_add()
        b.fetch_add()
        assert c.atomics == 2


class TestHashedMemory:
    def test_module_of_deterministic(self):
        h = HashedMemory(64, seed=3)
        assert h.module_of(12345) == h.module_of(12345)

    def test_module_in_range(self):
        h = HashedMemory(16)
        mods = h.module_of(np.arange(1000))
        assert mods.min() >= 0 and mods.max() < 16

    def test_consecutive_addresses_scatter(self):
        """Hashing breaks up locality (paper §II)."""
        h = HashedMemory(128)
        mods = h.module_of(np.arange(4096))
        # Nearly all modules must be touched by a contiguous sweep.
        assert len(np.unique(mods)) > 100

    def test_uniform_traffic_balances(self):
        h = HashedMemory(32)
        h.record_accesses(np.arange(32_000))
        assert h.load_imbalance() < 1.5

    def test_single_hot_word_still_serializes(self):
        """Hashing cannot spread one word: the hotspot hazard persists."""
        h = HashedMemory(32)
        h.record_accesses(np.full(1000, 77))
        assert h.load_imbalance() == pytest.approx(32.0)

    def test_empty_balance_is_one(self):
        assert HashedMemory(8).load_imbalance() == 1.0

    def test_reset(self):
        h = HashedMemory(8)
        h.record_accesses(np.arange(10))
        h.reset()
        assert h.module_loads.sum() == 0

    def test_invalid_module_count(self):
        with pytest.raises(ValueError):
            HashedMemory(0)
