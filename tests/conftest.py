"""Shared fixtures: small deterministic graphs and networkx oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edge_list, rmat


@pytest.fixture(scope="session")
def small_rmat():
    """A scale-10 RMAT miniature shared by kernel cross-validation tests."""
    return rmat(scale=10, edge_factor=16, seed=1)


@pytest.fixture(scope="session")
def small_rmat_nx(small_rmat):
    """networkx oracle view of :func:`small_rmat`."""
    g = nx.Graph(list(small_rmat.edges()))
    g.add_nodes_from(range(small_rmat.num_vertices))
    return g


@pytest.fixture
def two_triangles():
    """Two triangles sharing vertex 2 (bowtie): 2 triangles, known CCs."""
    return from_edge_list([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])


def to_networkx(graph):
    g = nx.DiGraph() if graph.directed else nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g
