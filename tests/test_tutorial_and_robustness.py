"""The tutorial's code must run, and experiment shapes must be robust to
the RNG seed (not artifacts of seed 1)."""

import re
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis import (
    ExperimentConfig,
    run_fig2,
    run_table1,
)
from repro.graphct import pagerank


class TestTutorial:
    def test_tutorial_blocks_run(self):
        tutorial = (
            Path(repro.__file__).parents[2] / "docs" / "TUTORIAL.md"
        )
        blocks = re.findall(
            r"```python\n(.*?)```", tutorial.read_text(), flags=re.S
        )
        assert len(blocks) >= 4
        namespace: dict = {}
        for block in blocks:
            block = block.replace("scale=12", "scale=9")
            exec(compile(block, "<TUTORIAL>", "exec"), namespace)
        assert namespace["got"] == namespace["expected"]


class TestSeedRobustness:
    """DESIGN.md's shape criteria must hold across seeds."""

    @pytest.mark.parametrize("seed", [2, 3])
    def test_table1_shape_criteria(self, seed):
        cfg = ExperimentConfig(scale=11, edge_factor=16, seed=seed)
        res = run_table1(cfg)
        for name, row in res.rows.items():
            assert row["ratio"] > 1.0, (seed, name)
            assert row["ratio"] <= 40.0, (seed, name)

    @pytest.mark.parametrize("seed", [2, 3])
    def test_fig2_shape_criteria(self, seed):
        cfg = ExperimentConfig(scale=11, edge_factor=16, seed=seed)
        res = run_fig2(cfg)
        apex = int(np.argmax(res.frontier_sizes))
        assert 0 < apex < len(res.frontier_sizes) - 1
        assert res.peak_message_to_frontier_ratio > 5


class TestDirectedPageRank:
    def test_matches_networkx_on_directed_graph(self):
        import networkx as nx

        from repro.graph import from_edge_list

        rng = np.random.default_rng(8)
        edges = [
            (int(a), int(b))
            for a, b in rng.integers(0, 40, (150, 2))
            if a != b
        ]
        g = from_edge_list(edges, 40, directed=True)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(40))
        nxg.add_edges_from(g.edges())
        ours = pagerank(g, tolerance=1e-12, max_iterations=300)
        oracle = nx.pagerank(nxg, alpha=0.85, tol=1e-13, max_iter=500)
        for v in range(40):
            assert ours.ranks[v] == pytest.approx(oracle[v], abs=1e-8)
