"""Tests for the analytic cost model — the regimes the paper reasons with."""

import pytest

from repro.xmt import (
    PNNL_XMT,
    RegionTrace,
    WorkTrace,
    XMTMachine,
    simulate,
)
from repro.xmt.cost_model import simulate_region


def big_region(**kw):
    """A region with far more parallelism than the machine has streams."""
    defaults = dict(
        name="big",
        parallel_items=10_000_000,
        instructions=16e7,
        reads=2e7,
        writes=1e7,
    )
    defaults.update(kw)
    return RegionTrace(**defaults)


def tiny_region(**kw):
    defaults = dict(
        name="tiny", parallel_items=10, instructions=160, reads=20, writes=10
    )
    defaults.update(kw)
    return RegionTrace(**defaults)


class TestScalingRegimes:
    def test_saturated_region_scales_linearly(self):
        """Paper Fig. 1: 'even vertical spacing indicates linear scaling'."""
        times = {
            p: simulate_region(big_region(), PNNL_XMT.with_processors(p)).seconds
            for p in (8, 16, 32, 64, 128)
        }
        for p in (16, 32, 64, 128):
            speedup = times[p // 2] / times[p]
            assert 1.7 < speedup <= 2.05, f"P={p}: speedup {speedup}"

    def test_small_region_scaling_is_flat(self):
        """Paper Fig. 3: early/late levels 'show flat scaling'."""
        t8 = simulate_region(tiny_region(), PNNL_XMT.with_processors(8)).seconds
        t128 = simulate_region(tiny_region(), PNNL_XMT.with_processors(128)).seconds
        assert t128 > 0.5 * t8  # no meaningful speedup

    def test_hotspot_bound_ignores_processors(self):
        """One hot fetch-and-add word serializes regardless of P (§VII)."""
        r = big_region(atomics=5e6, atomic_max_site=5e6)
        t8 = simulate_region(r, PNNL_XMT.with_processors(8))
        t128 = simulate_region(r, PNNL_XMT.with_processors(128))
        assert t128.bound == "hotspot"
        assert t128.hotspot_cycles == t8.hotspot_cycles

    def test_sharded_atomics_do_not_hotspot(self):
        r = big_region(atomics=5e6, atomic_max_site=100)
        sim = simulate_region(r, PNNL_XMT)
        assert sim.bound != "hotspot"

    def test_serial_region_pays_full_latency(self):
        r = RegionTrace(name="s", parallel_items=1, reads=1000, kind="serial")
        sim = simulate_region(r, PNNL_XMT)
        expected = 1000 * (PNNL_XMT.memory_latency_cycles + 1)
        assert sim.total_cycles == pytest.approx(expected)
        assert sim.overhead_cycles == 0.0

    def test_superstep_overhead_floor(self):
        """Near-empty BSP supersteps cost ~the runtime overhead (§IV)."""
        empty = RegionTrace(name="ss", parallel_items=2, instructions=10,
                            kind="superstep")
        loop = RegionTrace(name="lp", parallel_items=2, instructions=10,
                           kind="loop")
        ss = simulate_region(empty, PNNL_XMT)
        lp = simulate_region(loop, PNNL_XMT)
        assert ss.seconds > lp.seconds
        assert ss.overhead_cycles - lp.overhead_cycles == pytest.approx(
            PNNL_XMT.superstep_overhead_cycles
        )

    def test_zero_item_region_costs_only_overhead(self):
        r = RegionTrace(name="z", parallel_items=0)
        sim = simulate_region(r, PNNL_XMT)
        assert sim.bound == "overhead"
        assert sim.total_cycles == sim.overhead_cycles


class TestBounds:
    def test_issue_bound_reachable(self):
        # Almost pure ALU work with massive parallelism: issue bound.
        r = RegionTrace(name="alu", parallel_items=10_000_000,
                        instructions=1e9, reads=100.0)
        sim = simulate_region(r, PNNL_XMT)
        assert sim.bound == "issue"

    def test_latency_bound_when_memory_heavy(self):
        r = RegionTrace(name="mem", parallel_items=10_000_000, reads=3e7)
        sim = simulate_region(r, PNNL_XMT)
        assert sim.bound == "latency"

    def test_more_latency_more_time(self):
        r = big_region()
        fast = XMTMachine(memory_latency_cycles=100.0)
        slow = XMTMachine(memory_latency_cycles=2000.0)
        assert (
            simulate_region(r, slow).latency_cycles
            > simulate_region(r, fast).latency_cycles
        )


class TestSimulateRun:
    def test_totals_and_grouping(self):
        t = WorkTrace()
        t.add(big_region(name="a", iteration=0))
        t.add(big_region(name="a", iteration=1))
        t.add(tiny_region(name="b", iteration=1))
        run = simulate(t, PNNL_XMT)
        assert run.total_seconds == pytest.approx(
            sum(r.seconds for r in run.regions)
        )
        by_iter = run.seconds_by_iteration()
        assert set(by_iter) == {0, 1}
        assert by_iter[1] > by_iter[0]
        by_name = run.seconds_by_name()
        assert set(by_name) == {"a", "b"}

    def test_total_cycles_consistent_with_seconds(self):
        t = WorkTrace()
        t.add(big_region())
        run = simulate(t, PNNL_XMT)
        assert run.total_seconds == pytest.approx(
            PNNL_XMT.seconds(run.total_cycles)
        )

    def test_unlabelled_iterations_excluded_from_series(self):
        t = WorkTrace()
        t.add(big_region(iteration=-1))
        run = simulate(t, PNNL_XMT)
        assert run.seconds_by_iteration() == {}
