"""Tests for BSP k-core membership."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp import BSPEngine
from repro.bsp_algorithms import BSPKCore, bsp_k_core
from repro.graph import from_edge_list, ring_graph, star_graph
from repro.graphct import k_core_decomposition


class TestCorrectness:
    def test_matches_decomposition(self, small_rmat):
        decomp = k_core_decomposition(small_rmat)
        for k in (1, 2, 3, decomp.max_core):
            res = bsp_k_core(small_rmat, k)
            assert np.array_equal(res.in_core, decomp.core_numbers >= k)

    def test_ring_2core(self):
        res = bsp_k_core(ring_graph(8), 2)
        assert res.in_core.all()
        res3 = bsp_k_core(ring_graph(8), 3)
        assert not res3.in_core.any()

    def test_star_peels_completely_at_2(self):
        res = bsp_k_core(star_graph(6), 2)
        assert not res.in_core.any()
        # Leaves drop first, then the hub: a multi-superstep cascade.
        assert res.num_supersteps >= 2
        assert res.dropped_per_superstep[0] == 6

    def test_k_zero_keeps_everyone(self):
        g = from_edge_list([(0, 1)], num_vertices=4)
        assert bsp_k_core(g, 0).in_core.all()

    def test_engine_equivalence(self, small_rmat):
        k = 3
        eng = BSPEngine(small_rmat).run(BSPKCore(k))
        vec = bsp_k_core(small_rmat, k)
        eng_in = np.asarray(eng.values) >= 0
        assert np.array_equal(eng_in, vec.in_core)

    def test_validation(self):
        with pytest.raises(ValueError):
            bsp_k_core(ring_graph(4), -1)
        with pytest.raises(ValueError):
            bsp_k_core(from_edge_list([(0, 1)], directed=True), 1)
        with pytest.raises(ValueError):
            BSPKCore(-1)

    def test_cascade_depth(self):
        """A path peels from the ends inward, one hop per superstep."""
        from repro.graph import path_graph

        res = bsp_k_core(path_graph(9), 2)
        assert not res.in_core.any()
        assert res.num_supersteps >= 4  # 4 waves to reach the middle

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_property_matches_decomposition(self, data):
        n = data.draw(st.integers(min_value=1, max_value=16))
        m = data.draw(st.integers(min_value=0, max_value=40))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=m, max_size=m,
            )
        )
        g = from_edge_list(edges, n)
        k = data.draw(st.integers(min_value=0, max_value=6))
        res = bsp_k_core(g, k)
        oracle = k_core_decomposition(g).core_numbers >= k
        assert np.array_equal(res.in_core, oracle)


class TestAccounting:
    def test_messages_are_dropper_degrees(self, small_rmat):
        res = bsp_k_core(small_rmat, 4)
        assert res.messages_per_superstep[-1] == 0
        assert sum(res.dropped_per_superstep) == int(
            (~res.in_core).sum()
        )

    def test_trace_supersteps(self, small_rmat):
        res = bsp_k_core(small_rmat, 4)
        assert len(res.trace) == res.num_supersteps
        assert all(r.kind == "superstep" for r in res.trace)
