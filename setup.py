"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work on
offline machines that lack the ``wheel`` package (PEP-517 editable installs
require it)."""
from setuptools import setup

setup()
