#!/usr/bin/env python
"""A GraphCT-style analysis workflow on a synthetic social network.

GraphCT's purpose is chaining kernels over one in-memory graph ("a
workflow of graph analysis algorithms ... through a series of function
calls").  This example mirrors the massive-social-network-analysis
workflows the paper's group published (Twitter mining): take a
scale-free network, extract the giant component, then profile it —
components, degrees, clustering coefficients, k-cores, PageRank, and
sampled betweenness — all against the same read-only CSR graph.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.graph import rmat
from repro.graphct import GraphCT


def main() -> None:
    # A Twitter-like scale-free network (miniature).
    network = GraphCT(rmat(scale=13, edge_factor=16, seed=42))
    stats = network.degree_statistics()
    print(
        f"network: {network.graph.num_vertices:,} users, "
        f"{network.graph.num_edges:,} links, max degree "
        f"{stats.max_degree} (skew {stats.skew:.0f}x the mean)"
    )

    # Step 1: connectivity structure.
    cc = network.connected_components()
    sizes = np.sort(np.bincount(cc.labels))[::-1]
    print(
        f"{cc.num_components:,} components; giant component holds "
        f"{sizes[0]:,} users ({100 * sizes[0] / len(cc.labels):.1f}%)"
    )

    # Step 2: restrict the expensive analytics to the giant component.
    giant_label = np.bincount(cc.labels).argmax()
    giant = network.subgraph(np.flatnonzero(cc.labels == giant_label))
    print(f"giant component subgraph: {giant.graph}")

    # Step 3: cohesion profile.
    clustering = giant.clustering_coefficients()
    print(
        f"global clustering coefficient: "
        f"{clustering.global_coefficient:.4f} "
        f"({clustering.triangles.total_triangles:,} triangles)"
    )
    cores = giant.k_core_decomposition()
    print(
        f"max k-core: {cores.max_core} "
        f"({cores.core_members(cores.max_core).size} members)"
    )

    # Step 4: influence ranking (PageRank x betweenness sample).
    ranks = giant.pagerank(tolerance=1e-10)
    bc = giant.betweenness_centrality(num_sources=64, seed=1)
    top_pr = np.argsort(ranks.ranks)[::-1][:5]
    print("top-5 by PageRank (vertex: rank, betweenness):")
    for v in top_pr.tolist():
        print(
            f"  {v:6d}: {ranks.ranks[v]:.5f}, {bc.scores[v]:12.1f}"
        )
    # Hubs found by both measures should overlap heavily.
    top_bc = set(np.argsort(bc.scores)[::-1][:20].tolist())
    overlap = len(top_bc.intersection(top_pr.tolist()))
    print(f"PageRank/betweenness top-list overlap: {overlap}/5")


if __name__ == "__main__":
    main()
