#!/usr/bin/env python
"""Exploring the Cray XMT machine model directly.

The cost model is a first-class citizen of this library: one algorithm
execution yields a machine-independent work trace that can be priced on
any machine configuration.  This example asks paper-adjacent "what if"
questions: What if the XMT had more streams per processor?  Slower
memory?  What does the hotspot bound do to a deliberately contended
region?  How does the hashed memory spread traffic?

Run:  python examples/machine_model_exploration.py
"""

import numpy as np

from repro.bsp_algorithms import bsp_breadth_first_search
from repro.graph import rmat
from repro.xmt import HashedMemory, PNNL_XMT, XMTMachine, simulate
from repro.xmt.trace import RegionTrace, WorkTrace


def main() -> None:
    graph = rmat(scale=13, edge_factor=16, seed=1)
    source = int(np.argmax(graph.degrees()))
    trace = bsp_breadth_first_search(graph, source).trace

    print("== processor sweep (BSP BFS trace) ==")
    for p in (8, 16, 32, 64, 128):
        t = simulate(trace, PNNL_XMT.with_processors(p)).total_seconds
        print(f"  P={p:3d}: {t * 1e3:8.3f} ms")

    print("== architecture what-ifs at P=128 ==")
    variants = {
        "baseline XMT": XMTMachine(),
        "256 streams/proc": XMTMachine(streams_per_processor=256),
        "2x memory latency": XMTMachine(memory_latency_cycles=1200.0),
        "free barriers": XMTMachine(
            barrier_cycles_per_log2p=0.0, superstep_overhead_cycles=0.0
        ),
    }
    for name, machine in variants.items():
        t = simulate(trace, machine).total_seconds
        print(f"  {name:20s}: {t * 1e3:8.3f} ms")

    print("== hotspot bound on a synthetic contended region ==")
    contended = WorkTrace()
    contended.add(RegionTrace(
        name="counter", parallel_items=1_000_000, instructions=8e6,
        atomics=1e6, atomic_max_site=1e6,  # all on one word
    ))
    sharded = WorkTrace()
    sharded.add(RegionTrace(
        name="counter", parallel_items=1_000_000, instructions=8e6,
        atomics=1e6, atomic_max_site=1e3,  # spread over 1000 words
    ))
    for name, t in (("single word", contended), ("sharded", sharded)):
        for p in (8, 128):
            s = simulate(t, PNNL_XMT.with_processors(p)).total_seconds
            print(f"  {name:12s} P={p:3d}: {s * 1e3:8.3f} ms")
    print("  (one hot fetch-and-add word serializes regardless of P)")

    print("== hashed global memory ==")
    memory = HashedMemory(num_modules=128)
    memory.record_accesses(np.arange(100_000))  # a contiguous sweep
    print(
        f"  contiguous sweep load imbalance across 128 modules: "
        f"{memory.load_imbalance():.3f} (1.0 = perfect)"
    )


if __name__ == "__main__":
    main()
