#!/usr/bin/env python
"""Quickstart: the paper's comparison in ~40 lines.

Builds the miniature of the paper's RMAT input, runs connected
components in both programming models, verifies they agree, and prices
both executions on the simulated 128-processor Cray XMT.

Run:  python examples/quickstart.py
"""

from repro import GraphCT, bsp_connected_components, rmat
from repro.xmt import PNNL_XMT, simulate


def main() -> None:
    # The paper's input recipe at 1/1024 scale: undirected scale-free
    # RMAT, edge factor 16 (scale 24 -> 16M vertices in the paper).
    graph = rmat(scale=14, edge_factor=16, seed=1)
    print(f"graph: {graph}")

    # Shared memory: the GraphCT workflow surface.
    workflow = GraphCT(graph)
    shared = workflow.connected_components()
    print(
        f"GraphCT: {shared.num_components} components in "
        f"{shared.num_iterations} iterations"
    )

    # BSP: the same algorithm as a Pregel-style vertex program
    # (vectorized execution; see custom_vertex_program.py for the
    # engine API).
    bsp = bsp_connected_components(graph)
    print(
        f"BSP:     {bsp.num_components} components in "
        f"{bsp.num_supersteps} supersteps, "
        f"{bsp.total_messages:,} messages"
    )

    assert (shared.labels == bsp.labels).all(), "models must agree"

    # Price both executions on the paper's machine: the 128-processor
    # Cray XMT at PNNL.
    t_shared = simulate(shared.trace, PNNL_XMT).total_seconds
    t_bsp = simulate(bsp.trace, PNNL_XMT).total_seconds
    print(
        f"simulated 128P Cray XMT: GraphCT {t_shared * 1e3:.2f} ms, "
        f"BSP {t_bsp * 1e3:.2f} ms ({t_bsp / t_shared:.1f}x slower; "
        f"paper: 1.31 s vs 5.40 s, 4.1x, at 1024x the graph)"
    )


if __name__ == "__main__":
    main()
