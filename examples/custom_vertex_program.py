#!/usr/bin/env python
"""Writing your own Pregel-style algorithm against the BSP engine.

The public extension point of this library is
:class:`repro.bsp.VertexProgram`: implement ``compute`` and the engine
handles supersteps, message delivery, halting, combiners and
aggregators.  This example implements two programs not shipped in
:mod:`repro.bsp_algorithms`:

* **maximum-label propagation** — every vertex learns the largest vertex
  id in its component (the mirror image of Algorithm 1);
* **degree-threshold k-core test** — vertices repeatedly drop out while
  their surviving degree is below k, using an aggregator to watch
  convergence.

Run:  python examples/custom_vertex_program.py
"""

import numpy as np

from repro.bsp import BSPEngine, MaxCombiner, SumAggregator, VertexProgram
from repro.graph import rmat
from repro.graphct import k_core_decomposition


class MaxLabelProgram(VertexProgram):
    """Flood the maximum vertex id through each component."""

    def initial_value(self, vertex, graph):
        return vertex

    def compute(self, ctx, messages):
        best = max(messages) if messages else ctx.value
        if ctx.superstep == 0:
            ctx.send_to_neighbors(ctx.value)
        elif best > ctx.value:
            ctx.value = best
            ctx.send_to_neighbors(best)
        ctx.vote_to_halt()


class KCoreMembership(VertexProgram):
    """Decide k-core membership by iterated degree pruning.

    State: surviving-degree (or -1 once dropped).  A vertex that drops
    notifies its neighbours, which decrement their surviving degree.
    The ``dropped`` aggregator counts departures per superstep.
    """

    def __init__(self, k: int):
        self.k = k

    def initial_value(self, vertex, graph):
        return graph.degree(vertex)

    def compute(self, ctx, messages):
        if ctx.value >= 0:
            ctx.value -= len(messages)
            if ctx.value < self.k:
                ctx.aggregate("dropped", 1)
                ctx.value = -1
                ctx.send_to_neighbors(1)
        ctx.vote_to_halt()


def main() -> None:
    graph = rmat(scale=10, edge_factor=16, seed=3)
    print(f"graph: {graph}")

    # --- max-label components, with a MaxCombiner folding messages.
    engine = BSPEngine(graph, combiner=MaxCombiner())
    result = engine.run(MaxLabelProgram())
    labels = result.values_array(dtype=np.int64)
    print(
        f"max-label CC: {np.unique(labels).size} components in "
        f"{result.num_supersteps} supersteps "
        f"({result.total_messages:,} messages sent, combiner folded "
        f"them per destination)"
    )

    # --- k-core membership, cross-checked against the GraphCT kernel.
    k = 4
    engine = BSPEngine(graph, aggregators={"dropped": SumAggregator()})
    result = engine.run(KCoreMembership(k))
    in_core = result.values_array(dtype=np.int64) >= 0
    oracle = k_core_decomposition(graph).core_numbers >= k
    assert (in_core == oracle).all(), "BSP k-core must match GraphCT"
    print(
        f"{k}-core: {int(in_core.sum())} members, found in "
        f"{result.num_supersteps} supersteps; departures per superstep: "
        f"{result.aggregator_history['dropped']}"
    )


if __name__ == "__main__":
    main()
