#!/usr/bin/env python
"""Community detection in both programming models, with fault tolerance.

Extends the paper's three-kernel comparison with label-propagation
community detection (the GraphCT group's community-detection line is
cited in §II): the asynchronous shared-memory sweep against the
synchronous BSP formulation, scored by modularity.  Also demonstrates
the engine's Pregel-style checkpoint/recovery on the BSP run.

Run:  python examples/community_detection.py
"""

import numpy as np

from repro.bsp import BSPEngine, CheckpointStore
from repro.bsp_algorithms import (
    BSPLabelPropagation,
    bsp_label_propagation_communities,
)
from repro.graph import from_edge_list
from repro.graphct import label_propagation_communities, modularity
from repro.xmt import PNNL_XMT, simulate


def planted_partition(blocks=2, size=200, intra=9000, inter=80, seed=3):
    """Dense blocks + sparse cross links: known community structure."""
    rng = np.random.default_rng(seed)
    chunks = [
        rng.integers(b * size, (b + 1) * size, (intra, 2))
        for b in range(blocks)
    ]
    chunks.append(
        np.column_stack(
            [
                rng.integers(0, blocks * size, inter),
                rng.integers(0, blocks * size, inter),
            ]
        )
    )
    return from_edge_list(np.vstack(chunks), blocks * size)


def main() -> None:
    graph = planted_partition()
    print(f"graph: {graph}")

    shm = label_propagation_communities(graph)
    print(
        f"shared memory: {shm.num_communities} communities, "
        f"Q = {shm.modularity:.3f}, {shm.num_iterations} sweeps, "
        f"simulated {simulate(shm.trace, PNNL_XMT).total_seconds * 1e3:.2f} "
        f"ms on the 128P XMT"
    )

    bsp = bsp_label_propagation_communities(graph)
    print(
        f"BSP:           {bsp.num_communities} communities, "
        f"Q = {bsp.modularity:.3f}, {bsp.num_supersteps} supersteps, "
        f"simulated {simulate(bsp.trace, PNNL_XMT).total_seconds * 1e3:.2f} "
        f"ms"
    )

    # Checkpointed engine run: snapshot every 2 supersteps, then resume
    # from the last snapshot and confirm the result is unchanged.
    store = CheckpointStore()
    engine = BSPEngine(graph)
    full = engine.run(
        BSPLabelPropagation(), checkpoint_every=2, checkpoint_store=store
    )
    resumed = BSPEngine(graph).run(
        BSPLabelPropagation(), resume_from=store.latest
    )
    assert resumed.values == full.values
    labels = np.asarray(full.values)
    print(
        f"engine run with checkpoints every 2 supersteps: "
        f"{len(store)} snapshots, resume-from-snapshot reproduces the "
        f"partition exactly (Q = {modularity(graph, labels):.3f})"
    )


if __name__ == "__main__":
    main()
