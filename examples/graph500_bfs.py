#!/usr/bin/env python
"""Graph500-style BFS study: frontier shape and message overheads.

The paper's §IV motivates BFS with the Graph500 benchmark.  This example
runs a batch of breadth-first searches from random giant-component
sources (Graph500 runs 64), compares the BSP message volume with the
shared-memory frontier per level, and reports a simulated-XMT
"harmonic-mean TEPS" figure for both models.

Run:  python examples/graph500_bfs.py [scale]
"""

import sys

import numpy as np

from repro.bsp_algorithms import bsp_breadth_first_search
from repro.graph import rmat
from repro.graph.properties import reachable_from
from repro.graphct import breadth_first_search
from repro.xmt import PNNL_XMT, simulate

NUM_SEARCHES = 8


def main(scale: int = 13) -> None:
    graph = rmat(scale=scale, edge_factor=16, seed=1)
    print(f"graph: {graph}")

    # Graph500 samples search keys with degree > 0; we additionally keep
    # to the giant component so every search does real work.
    rng = np.random.default_rng(7)
    giant = reachable_from(
        graph, int(np.argmax(graph.degrees()))
    )
    candidates = np.flatnonzero(giant & (graph.degrees() > 0))
    sources = rng.choice(candidates, size=NUM_SEARCHES, replace=False)

    teps = {"graphct": [], "bsp": []}
    overhead = []
    for i, source in enumerate(sources.tolist()):
        shm = breadth_first_search(graph, source)
        bsp = bsp_breadth_first_search(graph, source)
        assert (shm.distances == bsp.distances).all()

        edges_traversed = sum(shm.edges_examined)
        t_shm = simulate(shm.trace, PNNL_XMT).total_seconds
        t_bsp = simulate(bsp.trace, PNNL_XMT).total_seconds
        teps["graphct"].append(edges_traversed / t_shm)
        teps["bsp"].append(edges_traversed / t_bsp)
        overhead.append(bsp.total_messages / max(edges_traversed, 1))
        print(
            f"search {i}: source {source:6d} reached "
            f"{shm.vertices_reached:6d} vertices in {shm.num_levels} "
            f"levels | XMT-128: GraphCT {t_shm * 1e3:7.2f} ms, "
            f"BSP {t_bsp * 1e3:7.2f} ms"
        )

    for model, values in teps.items():
        hmean = len(values) / sum(1.0 / v for v in values)
        print(f"harmonic-mean simulated TEPS [{model}]: {hmean:.3e}")
    print(
        f"mean BSP messages per traversed edge: "
        f"{np.mean(overhead):.2f} (every frontier-incident edge becomes "
        f"a message; the shared-memory code enqueues each vertex once)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
