#!/usr/bin/env python
"""Streaming graph analytics: tracking clustering as edges arrive.

The paper's group pioneered streaming graph analysis on the XMT
(STINGER; refs [12], [13]).  This example replays a synthetic edge
stream over a social-network miniature, maintaining clustering
coefficients incrementally, and shows the cost asymmetry the MTAAP 2010
paper reports: an incremental update does one neighbourhood
intersection; a recount touches every wedge in the graph.

Run:  python examples/streaming_updates.py
"""

import time

import numpy as np

from repro.graph import rmat
from repro.graph.streaming import StreamingGraph
from repro.graphct import count_triangles
from repro.graphct.streaming_clustering import (
    StreamingClusteringCoefficients,
)


def main() -> None:
    base = rmat(scale=11, edge_factor=16, seed=7)
    graph = StreamingGraph.from_csr(base)
    tracker = StreamingClusteringCoefficients(graph)
    print(
        f"seed graph: {base.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges, {tracker.total_triangles:,} triangles, "
        f"global CC {tracker.global_coefficient():.4f}"
    )

    rng = np.random.default_rng(11)
    n = base.num_vertices
    for epoch in range(5):
        # A batch of arrivals plus some departures of existing edges.
        arrivals = [
            (int(a), int(b))
            for a, b in rng.integers(0, n, (200, 2))
            if a != b
        ]
        live = list(graph.snapshot().edges())
        departures = [
            live[i] for i in rng.integers(0, len(live), 40).tolist()
        ]
        t0 = time.perf_counter()
        ins, dels = tracker.apply_batch(
            insertions=arrivals, deletions=departures
        )
        elapsed = time.perf_counter() - t0
        print(
            f"epoch {epoch}: +{ins} -{dels} edges in "
            f"{elapsed * 1e3:6.1f} ms -> {tracker.total_triangles:,} "
            f"triangles, global CC {tracker.global_coefficient():.4f}"
        )

    # Verify against a from-scratch recount.
    t0 = time.perf_counter()
    static = count_triangles(graph.snapshot())
    recount = time.perf_counter() - t0
    assert static.total_triangles == tracker.total_triangles
    print(
        f"verification recount: {static.total_triangles:,} triangles in "
        f"{recount * 1e3:.1f} ms — incremental tracking matched exactly"
    )


if __name__ == "__main__":
    main()
